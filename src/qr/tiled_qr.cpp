#include "qr/tiled_qr.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>

#include "common/error.hpp"
#include "ooc/operand.hpp"
#include "ooc/task_graph.hpp"
#include "qr/driver_util.hpp"
#include "qr/panel.hpp"
#include "sim/scoped_matrix.hpp"
#include "sim/trace_export.hpp"

namespace rocqr::qr::detail {

namespace {

using ooc::TaskCtx;
using ooc::TaskGraph;
using ooc::TaskId;
using ooc::TaskStage;
using sim::Device;
using sim::DeviceMatrixRef;
using sim::HostMutRef;
using sim::ScopedMatrix;
using sim::StoragePrecision;

constexpr TaskId kNone = -1;

std::string idx(index_t k, index_t j) {
  return std::to_string(k) + "," + std::to_string(j);
}

/// Rotating device-buffer pool. Acquiring a slot hands back its index; the
/// recorded `last_use` node is the WAR edge the slot's next writer must
/// depend on (the old output-fence taxonomy, now an explicit graph edge).
struct SlotPool {
  std::vector<ScopedMatrix> bufs;
  std::vector<TaskId> last_use;

  void add(ScopedMatrix buf) {
    bufs.push_back(std::move(buf));
    last_use.push_back(kNone);
  }
  size_t acquire() {
    const size_t s = next_;
    next_ = (next_ + 1) % bufs.size();
    return s;
  }

 private:
  size_t next_ = 0;
};

/// The node program of one tiled factorization. Builds the DAG step by
/// step so the checkpointing caller can run segment-by-segment; solo runs
/// add every step and run once.
class TiledProgram {
 public:
  TiledProgram(TaskGraph& graph, const TiledJob& job)
      : g_(graph), job_(job), a_(job.a), r_(job.r) {
    m_ = a_.rows;
    n_ = a_.cols;
    ROCQR_CHECK(m_ >= n_ && n_ >= 1, "tiled_qr: need m >= n >= 1");
    ROCQR_CHECK(r_.rows == n_ && r_.cols == n_, "tiled_qr: R must be n x n");
    b_ = std::min(job.opts.blocksize, n_);
    tiles_ = (n_ + b_ - 1) / b_;
  }

  index_t tiles() const { return tiles_; }
  index_t units_done() const { return units_; }
  index_t columns_done() const { return std::min(units_ * b_, n_); }
  const TiledJob& job() const { return job_; }

  /// Device working set: two role-swapping resident tiles, up to two
  /// streaming slots for far tiles, and a rotating pool of b x b R tiles.
  void allocate(Device& dev) {
    const std::string& l = job_.label;
    big_.add(ScopedMatrix(dev, m_, b_, StoragePrecision::FP32,
                          l + "tiled tile a"));
    if (tiles_ > 1) {
      big_.add(ScopedMatrix(dev, m_, b_, StoragePrecision::FP32,
                            l + "tiled tile b"));
    }
    const index_t far_slots = std::min<index_t>(2, tiles_ - 2);
    for (index_t s = 0; s < far_slots; ++s) {
      stream_.add(ScopedMatrix(dev, m_, b_, StoragePrecision::FP32,
                               l + "tiled stream " + std::to_string(s)));
    }
    const index_t r_slots = std::min<index_t>(4, tiles_ + 1);
    for (index_t s = 0; s < r_slots; ++s) {
      rtiles_.add(ScopedMatrix(dev, b_, b_, StoragePrecision::FP32,
                               l + "tiled r " + std::to_string(s)));
    }
  }

  /// First segment: stage the starting tile. A fresh run factors tile 0;
  /// a resume (opts.resume_units = u > 0) re-stages the already-factored
  /// Q_{u-1} and goes straight to step u-1. Returns true when the segment
  /// completed a new unit (a checkpoint boundary).
  bool begin() {
    const index_t u = std::min(job_.opts.resume_units, tiles_);
    k_ = u > 0 ? u - 1 : 0;
    units_ = std::max<index_t>(u, 0);
    if (u >= tiles_) return false; // everything already factored
    const index_t t = k_;
    const std::int64_t p = prio(t, 0);
    const TaskId stage = g_.add(
        TaskStage::MoveIn, job_.label + "stage " + std::to_string(t),
        [this, t](TaskCtx& c) {
          c.h2d(tile_buf(t), host_tile_const(t),
                job_.label + "h2d tile " + std::to_string(t));
        },
        {}, p);
    if (u > 0) {
      // The staged tile is already Q_{u-1}: no factor, no emit. Updates of
      // step u-1 depend on the staging transfer instead.
      fac_ = stage;
      emit_ = kNone;
      return false;
    }
    fac_ = add_factor(t, {stage}, p);
    emit_ = add_emit(t, fac_, p);
    units_ = 1;
    return true;
  }

  /// Adds step k (updates by Q_k plus the factorization of tile k+1) and
  /// advances. Returns false once every tile is factored.
  bool add_step() {
    if (k_ >= tiles_ - 1) return false;
    const index_t k = k_;
    const index_t wk = width(k);
    std::vector<TaskId> q_readers;
    TaskId next_fac = kNone;
    TaskId next_emit = kNone;
    for (index_t j = k + 1; j < tiles_; ++j) {
      const bool resident = j == k + 1;
      const std::int64_t p = prio(k, resident ? 1 : 3);
      const index_t wj = width(j);

      // Move-in of tile j. WAR edges: the resident destination held
      // Q_{k-1}, so wait its readers; a streaming slot waits the move-out
      // that last drained it. Host-order edge: the previous step's
      // writeback of tile j must land before this re-read.
      DeviceMatrixRef dst;
      std::vector<TaskId> in_deps;
      size_t far_slot = 0;
      if (resident) {
        dst = tile_buf(j);
        in_deps = prev_q_readers_;
      } else {
        far_slot = stream_.acquire();
        dst = DeviceMatrixRef(stream_.bufs[far_slot].get())
                  .block(0, 0, m_, wj);
        if (stream_.last_use[far_slot] != kNone) {
          in_deps.push_back(stream_.last_use[far_slot]);
        }
      }
      if (out_a_.count(j) > 0) in_deps.push_back(out_a_[j]);
      const TaskId in = g_.add(
          TaskStage::MoveIn, job_.label + "in " + idx(k, j),
          [this, dst, j](TaskCtx& c) {
            c.h2d(dst, host_tile_const(j),
                  job_.label + "h2d tile " + std::to_string(j));
          },
          std::move(in_deps), p);

      // Block-MGS update: R_kj = Q_k^T A_j, then A_j -= Q_k R_kj.
      const size_t rs = rtiles_.acquire();
      const DeviceMatrixRef rt =
          DeviceMatrixRef(rtiles_.bufs[rs].get()).block(0, 0, wk, wj);
      std::vector<TaskId> upd_deps{in, fac_};
      if (rtiles_.last_use[rs] != kNone) {
        upd_deps.push_back(rtiles_.last_use[rs]);
      }
      const DeviceMatrixRef q = tile_buf(k);
      const TaskId upd = g_.add(
          TaskStage::Compute, job_.label + "upd " + idx(k, j),
          [this, q, dst, rt, k, j](TaskCtx& c) {
            c.gemm(blas::Op::Trans, blas::Op::NoTrans, 1.0f, q, dst, 0.0f,
                   rt, job_.label + "gemm qta " + idx(k, j));
            c.gemm(blas::Op::NoTrans, blas::Op::NoTrans, -1.0f, q, rt, 1.0f, dst,
                   job_.label + "gemm upd " + idx(k, j));
          },
          std::move(upd_deps), p);
      q_readers.push_back(upd);

      // R row writeback.
      const TaskId outr = g_.add(
          TaskStage::MoveOut, job_.label + "outR " + idx(k, j),
          [this, rt, k, j](TaskCtx& c) {
            c.d2h(ooc::host_block(r_, offset(k), offset(j), rt.rows, rt.cols),
                  rt, job_.label + "d2h R " + idx(k, j));
          },
          {upd}, p);
      rtiles_.last_use[rs] = outr;

      if (resident) {
        // The tile that just absorbed its update factors in place — the
        // lookahead: priority (k, 2) beats the far updates' (k, 3), so the
        // panel runs on the compute engine while they stream.
        const std::int64_t pf = prio(k, 2);
        next_fac = add_factor(j, {upd}, pf);
        next_emit = add_emit(j, next_fac, pf);
      } else {
        const TaskId outa = g_.add(
            TaskStage::MoveOut, job_.label + "outA " + idx(k, j),
            [this, dst, j](TaskCtx& c) {
              c.d2h(host_tile(j), dst,
                    job_.label + "d2h tile " + std::to_string(j));
            },
            {upd}, p);
        stream_.last_use[far_slot] = outa;
        out_a_[j] = outa;
      }
    }
    prev_q_readers_ = std::move(q_readers);
    if (emit_ != kNone) prev_q_readers_.push_back(emit_);
    fac_ = next_fac;
    emit_ = next_emit;
    ++k_;
    units_ = k_ + 1;
    return true;
  }

 private:
  index_t width(index_t t) const { return std::min(b_, n_ - t * b_); }
  index_t offset(index_t t) const { return t * b_; }
  DeviceMatrixRef tile_buf(index_t t) {
    return DeviceMatrixRef(big_.bufs[static_cast<size_t>(t) & 1].get())
        .block(0, 0, m_, width(t));
  }
  sim::HostConstRef host_tile_const(index_t t) const {
    return ooc::host_block(sim::as_const(a_), 0, offset(t), m_, width(t));
  }
  sim::HostMutRef host_tile(index_t t) const {
    return ooc::host_block(a_, 0, offset(t), m_, width(t));
  }
  /// Priority key: (step, phase) with phase 1 = the resident tile's
  /// move-in/update, 2 = the next panel factorization, 3 = far tiles.
  std::int64_t prio(index_t k, std::int64_t phase) const {
    return 4 * static_cast<std::int64_t>(k) + phase;
  }

  TaskId add_factor(index_t t, std::vector<TaskId> deps, std::int64_t p) {
    const size_t rs = rtiles_.acquire();
    if (rtiles_.last_use[rs] != kNone) {
      deps.push_back(rtiles_.last_use[rs]);
    }
    const index_t w = width(t);
    fac_r_slot_ = rs;
    fac_r_ref_ = DeviceMatrixRef(rtiles_.bufs[rs].get()).block(0, 0, w, w);
    const DeviceMatrixRef aq = tile_buf(t);
    const DeviceMatrixRef rt = fac_r_ref_;
    return g_.add(
        TaskStage::Compute, job_.label + "fac " + std::to_string(t),
        [this, aq, rt](TaskCtx& c) {
          panel_qr_device(c.device(), aq, rt, c.stream(), job_.opts,
                          job_.label);
        },
        std::move(deps), p);
  }

  TaskId add_emit(index_t t, TaskId fac, std::int64_t p) {
    const index_t w = width(t);
    const DeviceMatrixRef rt = fac_r_ref_;
    const DeviceMatrixRef q = tile_buf(t);
    const TaskId id = g_.add(
        TaskStage::MoveOut, job_.label + "emit " + std::to_string(t),
        [this, rt, q, t, w](TaskCtx& c) {
          c.d2h(ooc::host_block(r_, offset(t), offset(t), w, w), rt,
                job_.label + "d2h R " + idx(t, t));
          c.d2h(host_tile(t), q,
                job_.label + "d2h Q " + std::to_string(t));
        },
        {fac}, p);
    rtiles_.last_use[fac_r_slot_] = id;
    return id;
  }

  TaskGraph& g_;
  const TiledJob& job_;
  HostMutRef a_;
  HostMutRef r_;
  index_t m_ = 0;
  index_t n_ = 0;
  index_t b_ = 0;
  index_t tiles_ = 0;
  index_t k_ = 0;
  index_t units_ = 0;
  SlotPool big_;
  SlotPool stream_;
  SlotPool rtiles_;
  TaskId fac_ = kNone;
  TaskId emit_ = kNone;
  size_t fac_r_slot_ = 0;
  DeviceMatrixRef fac_r_ref_;
  std::vector<TaskId> prev_q_readers_;
  std::map<index_t, TaskId> out_a_;
};

} // namespace

std::vector<QrStats> run_tiled_batch(Device& dev,
                                     const std::vector<TiledJob>& jobs) {
  ROCQR_CHECK(!jobs.empty(), "tiled_qr: no jobs");
  bool any_sink = false;
  for (const TiledJob& job : jobs) {
    job.opts.validate();
    any_sink = any_sink || job.opts.checkpoint_sink != nullptr;
  }

  const size_t window = dev.trace().size();
  sim::TraceSpan span(dev, "tiled_qr");
  TaskGraph graph(dev, gemm_options(jobs.front().opts));

  std::vector<std::unique_ptr<TiledProgram>> progs;
  progs.reserve(jobs.size());
  for (const TiledJob& job : jobs) {
    progs.push_back(std::make_unique<TiledProgram>(graph, job));
    progs.back()->allocate(dev);
  }

  if (!any_sink) {
    // No checkpoint boundaries: build the whole DAG and run it once —
    // maximum lookahead across every step (and every colocated job).
    for (auto& p : progs) p->begin();
    bool more = true;
    while (more) {
      more = false;
      for (auto& p : progs) more = p->add_step() || more;
    }
    graph.run();
  } else {
    // Checkpointed: run round-by-round so every boundary is a consistent
    // "u tiles factored" host snapshot. A round enqueues one segment of
    // EVERY job before the single graph.run(), so colocated jobs still
    // interleave on the engines between checkpoint syncs; only then does
    // each advanced job checkpoint (maybe_checkpoint synchronizes before
    // snapshotting, and is where a serve PreemptSink raises
    // PreemptRequest, unwinding the whole batch). With one job this is
    // exactly the segment-per-segment schedule resume replays.
    std::vector<char> advanced(progs.size(), 0);
    for (size_t i = 0; i < progs.size(); ++i) {
      advanced[i] = progs[i]->begin() ? 1 : 0;
    }
    graph.run();
    for (size_t i = 0; i < progs.size(); ++i) {
      if (!advanced[i]) continue; // resume staging: no new unit to record
      auto& p = progs[i];
      maybe_checkpoint(dev, "tiled", p->job().a, p->job().r, p->job().opts,
                       p->columns_done(), p->units_done());
    }
    bool more = true;
    while (more) {
      more = false;
      for (size_t i = 0; i < progs.size(); ++i) {
        advanced[i] = progs[i]->add_step() ? 1 : 0;
        more = more || advanced[i] != 0;
      }
      if (!more) break;
      graph.run();
      for (size_t i = 0; i < progs.size(); ++i) {
        if (!advanced[i]) continue;
        auto& p = progs[i];
        maybe_checkpoint(dev, "tiled", p->job().a, p->job().r, p->job().opts,
                         p->columns_done(), p->units_done());
      }
    }
  }

  dev.synchronize();
  std::vector<QrStats> stats;
  stats.reserve(progs.size());
  for (const auto& p : progs) {
    stats.push_back(stats_from_trace(dev.trace(), window, dev.memory_peak(),
                                     p->job().label));
  }
  return stats;
}

QrStats run_tiled(Device& dev, HostMutRef a, HostMutRef r,
                  const QrOptions& opts) {
  return run_tiled_batch(dev, {TiledJob{a, r, opts, ""}}).front();
}

} // namespace rocqr::qr::detail
