// Left-looking out-of-core QR — the classic disk-era formulation (SOLAR,
// §2.1): each panel pulls in all previously factored Q panels and applies
// their projections lazily, so the trailing matrix is never updated or
// written back. Compared to the right-looking blocking driver it moves far
// fewer bytes (especially device-to-host) at the price of skinny
// panel-width GEMMs. Under the calibrated V100 model its movement savings
// outweigh even the TensorCore shape penalty — it beats right-looking
// blocking — but the paper's recursive algorithm beats both, because it is
// the only formulation that gets small movement AND near-peak GEMM shapes
// simultaneously (see bench/left_vs_right).
#pragma once

#include "qr/options.hpp"
#include "sim/device.hpp"

namespace rocqr::qr {

namespace detail {

/// Factors `a` (m x n host, becomes Q) with `r` receiving R, left-looking:
/// per panel, stream every previous Q panel through the device, project,
/// then factor in core. Uses opts.blocksize / precision / panel_algorithm;
/// the update-pipeline options (staging, ramp) do not apply. Internal
/// entry — callers go through qr::factorize (Algorithm::LeftLooking).
QrStats run_left_looking(sim::Device& dev, sim::HostMutRef a,
                         sim::HostMutRef r, const QrOptions& opts);

} // namespace detail

} // namespace rocqr::qr
