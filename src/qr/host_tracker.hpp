// Tracks which device-to-host copies must complete before host regions of
// the matrix being factored may be re-read by a later move-in.
//
// Writers are panel Q move-outs and trailing-update (outer product)
// move-outs; readers are panel move-ins and the streamed GEMM inputs. The
// tracker is what lets the drivers express the paper's QR-level pipelining
// (§4.2) exactly: a reader waits on precisely the writes it depends on, so
// e.g. the first rows of the next panel can move in while the last rows of
// the trailing update are still moving out.
#pragma once

#include <vector>

#include "ooc/gemm_engines.hpp"
#include "sim/device.hpp"

namespace rocqr::qr::detail {

class HostWriteTracker {
 public:
  explicit HostWriteTracker(index_t total_cols);

  /// Records that host columns [cols.offset, +width) were (re)written; they
  /// are current once `done` completes. `regions` optionally carries the
  /// writer's per-region completion events (absolute coordinates).
  void record(ooc::Slab cols, sim::Event done,
              std::vector<ooc::RegionEvent> regions = {});

  /// Events guarding a read of columns [offset, offset+width).
  std::vector<sim::Event> events_for(index_t offset, index_t width) const;

  /// Fine-grained region events for a read of the given columns, taken from
  /// the most recent writer if it covers the whole requested range and
  /// published regions. Empty result = caller should fall back to
  /// events_for (coarse wait).
  std::vector<ooc::RegionEvent> regions_for(index_t offset,
                                            index_t width) const;

 private:
  struct Entry {
    index_t offset = 0;
    index_t width = 0;
    sim::Event done{};
    std::vector<ooc::RegionEvent> regions;
  };

  std::vector<Entry> entries_; // append order == write order
  index_t total_cols_;
};

} // namespace rocqr::qr::detail
