#include "qr/ooc_solve.hpp"

#include <algorithm>

#include "blas/transform.hpp"
#include "common/error.hpp"
#include "ooc/operand.hpp"
#include "ooc/trsm_engine.hpp"
#include "qr/driver_util.hpp"
#include "qr/recursive_qr.hpp"

namespace rocqr::qr {

ooc::OocGemmStats ooc_apply_qt(sim::Device& dev, sim::HostConstRef q,
                               sim::HostConstRef b, sim::HostMutRef y,
                               const ooc::OocGemmOptions& opts) {
  ROCQR_CHECK(q.rows == b.rows, "ooc_apply_qt: Q and b row mismatch");
  ROCQR_CHECK(y.rows == q.cols && y.cols == b.cols,
              "ooc_apply_qt: y must be n x nrhs");
  return ooc::inner_product_recursive(dev, ooc::Operand::on_host(q),
                                      ooc::Operand::on_host(b), y, opts);
}

OocLsStats ooc_least_squares(sim::Device& dev, sim::HostMutRef a,
                             sim::HostMutRef r, sim::HostConstRef b,
                             sim::HostMutRef x, const QrOptions& opts) {
  const index_t m = a.rows;
  const index_t n = a.cols;
  const index_t nrhs = b.cols;
  ROCQR_CHECK(b.rows == m, "ooc_least_squares: b row mismatch");
  ROCQR_CHECK(x.rows == n && x.cols == nrhs,
              "ooc_least_squares: x must be n x nrhs");

  const size_t window = dev.trace().size();
  OocLsStats stats;
  stats.factor = detail::run_recursive(dev, a, r, opts);

  ooc::OocGemmOptions gopts = detail::gemm_options(opts);
  gopts.blocksize = std::min<index_t>(opts.blocksize, m);
  ooc_apply_qt(dev, sim::as_const(a), b, x, gopts);
  ooc::ooc_trsm(dev, ooc::TriSolveKind::Upper, sim::as_const(r),
                sim::as_const(x), x, gopts);
  dev.synchronize();
  stats.total_seconds = sim::summarize(dev.trace(), window).span();
  return stats;
}

} // namespace rocqr::qr
