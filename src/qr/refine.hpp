// Mixed-precision least-squares solve with iterative refinement — the
// technique of the paper's references [10-12] (Haidar et al.): factor fast
// in low precision on the matrix engine, then recover working-precision
// accuracy with a few cheap residual-correction sweeps.
#pragma once

#include "blas/gemm.hpp"
#include "la/matrix.hpp"

namespace rocqr::qr {

struct RefineResult {
  la::Matrix x;          ///< n x nrhs solution
  int iterations = 0;    ///< refinement sweeps actually performed
  double final_residual_norm = 0.0; ///< |Aᵀ(b - A x)|_F after the last sweep
};

/// Solves min |A x - b| (A m x n, m >= n, full rank) by QR in
/// `factor_precision` (fp16-input GEMMs model the TensorCore path) followed
/// by iterative refinement in fp32: repeat x += R⁻¹ Qᵀ (b - A x) until the
/// normal-equations residual stops improving or `max_iterations` is hit.
RefineResult ls_solve_refined(
    la::ConstMatrixView a, la::ConstMatrixView b,
    blas::GemmPrecision factor_precision = blas::GemmPrecision::FP16_FP32,
    int max_iterations = 10, double tolerance = 1e-6);

} // namespace rocqr::qr
