#include "qr/autotune.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "qr/blocking_qr.hpp"
#include "qr/recursive_qr.hpp"
#include "sim/device.hpp"

namespace rocqr::qr {

TuneResult tune_blocksize(const sim::DeviceSpec& spec, index_t m, index_t n,
                          bool recursive, QrOptions base,
                          index_t min_blocksize, index_t max_blocksize) {
  ROCQR_CHECK(m >= n && n >= 1, "tune_blocksize: need m >= n >= 1");
  ROCQR_CHECK(min_blocksize >= 1 && min_blocksize <= max_blocksize,
              "tune_blocksize: bad blocksize range");

  // Clamp the sweep to the matrix: the drivers clamp b to n anyway, so any
  // candidate wider than n would alias b = n. The clamped upper end is
  // always included as a tail candidate — it is b = n whenever n fits the
  // caller's range, which covers both n < min_blocksize (single candidate
  // b = n) and n not of the form min_blocksize·2^k.
  const index_t hi = std::min(max_blocksize, n);
  const index_t lo = std::min(min_blocksize, hi);
  std::vector<index_t> candidates;
  for (index_t b = lo; b <= hi; b *= 2) candidates.push_back(b);
  if (candidates.empty() || candidates.back() != hi) candidates.push_back(hi);

  TuneResult result;
  for (const index_t b : candidates) {
    TunePoint point;
    point.blocksize = b;
    sim::Device dev(spec, sim::ExecutionMode::Phantom);
    dev.model().install_paper_calibration();
    try {
      auto a = sim::HostMutRef::phantom(m, n);
      auto r = sim::HostMutRef::phantom(n, n);
      QrOptions opts = base;
      opts.blocksize = b;
      const QrStats stats = recursive
                                ? detail::run_recursive(dev, a, r, opts)
                                : detail::run_blocking(dev, a, r, opts);
      point.seconds = stats.total_seconds;
      point.peak_bytes = stats.peak_device_bytes;
      point.fits = true;
    } catch (const DeviceOutOfMemory&) {
      point.fits = false;
      point.peak_bytes = dev.memory_peak(); // high-water before the OOM
    }
    result.sweep.push_back(point);
  }

  const auto best = std::min_element(
      result.sweep.begin(), result.sweep.end(),
      [](const TunePoint& lhs, const TunePoint& rhs) {
        if (lhs.fits != rhs.fits) return lhs.fits; // feasible wins
        return lhs.fits && lhs.seconds < rhs.seconds;
      });
  if (!best->fits) {
    throw DeviceOutOfMemory(
        "tune_blocksize: no feasible blocksize for " + format_shape(m, n) +
        " QR on " + spec.name + " (" + format_bytes(spec.memory_capacity) +
        "): every candidate in [" + std::to_string(lo) + ", " +
        std::to_string(hi) + "] exceeded device memory");
  }
  result.best_blocksize = best->blocksize;
  result.best_seconds = best->seconds;
  result.best_peak_bytes = best->peak_bytes;
  return result;
}

} // namespace rocqr::qr
