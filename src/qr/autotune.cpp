#include "qr/autotune.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "qr/blocking_qr.hpp"
#include "qr/recursive_qr.hpp"
#include "sim/device.hpp"

namespace rocqr::qr {

TuneResult tune_blocksize(const sim::DeviceSpec& spec, index_t m, index_t n,
                          bool recursive, QrOptions base,
                          index_t min_blocksize, index_t max_blocksize) {
  ROCQR_CHECK(m >= n && n >= 1, "tune_blocksize: need m >= n >= 1");
  ROCQR_CHECK(min_blocksize >= 1 && min_blocksize <= max_blocksize,
              "tune_blocksize: bad blocksize range");

  TuneResult result;
  for (index_t b = min_blocksize; b <= max_blocksize; b *= 2) {
    if (b > n) break;
    TunePoint point;
    point.blocksize = b;
    try {
      sim::Device dev(spec, sim::ExecutionMode::Phantom);
      dev.model().install_paper_calibration();
      auto a = sim::HostMutRef::phantom(m, n);
      auto r = sim::HostMutRef::phantom(n, n);
      QrOptions opts = base;
      opts.blocksize = b;
      const QrStats stats = recursive ? recursive_ooc_qr(dev, a, r, opts)
                                      : blocking_ooc_qr(dev, a, r, opts);
      point.seconds = stats.total_seconds;
      point.fits = true;
    } catch (const DeviceOutOfMemory&) {
      point.fits = false;
    }
    result.sweep.push_back(point);
  }

  ROCQR_CHECK(!result.sweep.empty(), "tune_blocksize: no candidate fits n");
  const auto best = std::min_element(
      result.sweep.begin(), result.sweep.end(),
      [](const TunePoint& lhs, const TunePoint& rhs) {
        if (lhs.fits != rhs.fits) return lhs.fits; // feasible wins
        return lhs.fits && lhs.seconds < rhs.seconds;
      });
  if (!best->fits) {
    throw DeviceOutOfMemory(
        "tune_blocksize: no candidate blocksize fits the device");
  }
  result.best_blocksize = best->blocksize;
  result.best_seconds = best->seconds;
  return result;
}

} // namespace rocqr::qr
