// Static GEMM plans of the *in-core* CGS QR algorithms.
//
// The paper's §3.1.3 (and the HPDC'20 study it builds on) argues recursion
// wins in core because it "provides larger GEMMs which can be executed more
// quickly on TensorCore". These helpers enumerate the exact GEMM sequence
// each in-core algorithm performs, so benches and tests can quantify that
// claim against the performance model: same total flops, very different
// shape distribution.
#pragma once

#include <vector>

#include "blas/gemm.hpp"
#include "common/types.hpp"
#include "sim/perf_model.hpp"

namespace rocqr::qr {

struct GemmShape {
  blas::Op opa = blas::Op::NoTrans;
  index_t m = 0;
  index_t n = 0;
  index_t k = 0;

  flops_t flops() const { return blas::gemm_flops(m, n, k); }
};

/// GEMMs of the blocked CGS QR of an m x n matrix with panel width b:
/// per panel, one inner product (Trans) and one outer product (NoTrans).
std::vector<GemmShape> blocked_qr_gemm_plan(index_t m, index_t n, index_t b);

/// GEMMs of the recursive CGS QR with base (panel) width `base`.
std::vector<GemmShape> recursive_qr_gemm_plan(index_t m, index_t n,
                                              index_t base);

/// Total modeled execution time of a plan under a performance model.
sim_time_t plan_seconds(const std::vector<GemmShape>& plan,
                        const sim::PerfModel& model,
                        blas::GemmPrecision precision);

/// Total flops of a plan.
flops_t plan_flops(const std::vector<GemmShape>& plan);

} // namespace rocqr::qr
