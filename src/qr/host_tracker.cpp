#include "qr/host_tracker.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace rocqr::qr::detail {

namespace {

bool intersects(index_t o1, index_t w1, index_t o2, index_t w2) {
  return o1 < o2 + w2 && o2 < o1 + w1;
}

} // namespace

HostWriteTracker::HostWriteTracker(index_t total_cols)
    : total_cols_(total_cols) {
  ROCQR_CHECK(total_cols >= 1, "HostWriteTracker: need at least one column");
}

void HostWriteTracker::record(ooc::Slab cols, sim::Event done,
                              std::vector<ooc::RegionEvent> regions) {
  ROCQR_CHECK(cols.offset >= 0 && cols.width >= 1 &&
                  cols.offset + cols.width <= total_cols_,
              "HostWriteTracker::record: column range out of bounds");
  // Drop entries the new write fully supersedes (keeps the list short and
  // keeps regions_for pointing at the latest writer).
  std::erase_if(entries_, [&](const Entry& e) {
    return e.offset >= cols.offset &&
           e.offset + e.width <= cols.offset + cols.width;
  });
  entries_.push_back(Entry{cols.offset, cols.width, done, std::move(regions)});
}

std::vector<sim::Event> HostWriteTracker::events_for(index_t offset,
                                                     index_t width) const {
  std::vector<sim::Event> events;
  for (const Entry& e : entries_) {
    if (intersects(e.offset, e.width, offset, width) && e.done.valid()) {
      events.push_back(e.done);
    }
  }
  return events;
}

std::vector<ooc::RegionEvent> HostWriteTracker::regions_for(
    index_t offset, index_t width) const {
  // Walk newest-first; the latest writer covering the range wins.
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (it->offset <= offset && offset + width <= it->offset + it->width) {
      if (it->regions.empty()) return {};
      std::vector<ooc::RegionEvent> out;
      for (const ooc::RegionEvent& r : it->regions) {
        if (intersects(r.cols.offset, r.cols.width, offset, width)) {
          out.push_back(r);
        }
      }
      return out;
    }
    if (intersects(it->offset, it->width, offset, width)) {
      // Partially covered by a newer writer: fine-grained path not safe.
      return {};
    }
  }
  return {};
}

} // namespace rocqr::qr::detail
