// Cache-blocked GEMM micro-kernel: packing layouts and the register tile.
//
// The blocked driver in gemm.cpp walks the classic three-level tiling
// (Goto/BLIS scheme, cf. the tiled-kernel designs in Buttari et al. and the
// TSQR kernel discussion in Demmel et al.):
//
//   for jc in N step kNC:            // B panel column block
//     for pc in K step kKC:          //   shared depth block
//       pack B(pc:pc+kc, jc:jc+nc)   //   -> kNR-column strips, alpha folded
//       for ic in M step kMC:        //     A block, per-thread
//         pack A(ic:ic+mc, pc:pc+kc) //     -> kMR-row strips
//         micro-kernel over every (kMR x kNR) tile of C
//
// The packed panels give the micro-kernel unit-stride, transpose-free,
// precision-resolved inputs: fp16 rounding (GemmPrecision::FP16_FP32)
// happens exactly once per element, on pack, so the inner loop is identical
// for both precision paths — the same contract the seed kernel had.
//
// Tiling parameters (all in floats):
//   kMR x kNR  register tile, sized so the accumulator block plus one A
//              sliver and one B sliver fit in architectural registers
//              (8 x 6 = 48 accumulators: 12 xmm or 6 ymm).
//   kKC        depth of a packed panel; one A strip (kMR x kKC = 8 KiB) and
//              one B strip (kKC x kNR = 6 KiB) stay L1-resident.
//   kMC        rows of the packed A block: kMC x kKC = 128 KiB, L2-resident.
//   kNC        columns of the packed B panel: kKC x kNC = 1.5 MiB, sized for
//              the outer cache so it is reused across every A block.
#pragma once

#include <algorithm>
#include <cstddef>

#include "blas/gemm.hpp"
#include "common/half.hpp"
#include "common/types.hpp"

namespace rocqr::blas::kernel {

inline constexpr index_t kMR = 8;
inline constexpr index_t kNR = 6;
inline constexpr index_t kMC = 128;  // multiple of kMR
inline constexpr index_t kKC = 256;
inline constexpr index_t kNC = 1536; // multiple of kNR

inline float load_rounded(const float* p, GemmPrecision precision) {
  return precision == GemmPrecision::FP16_FP32
             ? static_cast<float>(half(*p))
             : *p;
}

/// op(X)(i, j) for X stored column-major with leading dimension ldx.
inline const float* op_element(Op op, const float* x, index_t ldx, index_t i,
                               index_t j) {
  return op == Op::NoTrans ? &x[i + j * ldx] : &x[j + i * ldx];
}

/// Number of kMR-row strips covering mb rows (last one may be partial).
inline index_t a_strips(index_t mb) { return (mb + kMR - 1) / kMR; }
inline index_t b_strips(index_t nb) { return (nb + kNR - 1) / kNR; }

/// Packed sizes in floats (strips are zero-padded to full width so the
/// micro-kernel never branches on the depth loop).
inline size_t packed_a_size(index_t mb, index_t kb) {
  return static_cast<size_t>(a_strips(mb)) * static_cast<size_t>(kMR) *
         static_cast<size_t>(kb);
}
inline size_t packed_b_size(index_t kb, index_t nb) {
  return static_cast<size_t>(b_strips(nb)) * static_cast<size_t>(kNR) *
         static_cast<size_t>(kb);
}

/// Packs op(A)(row0 : row0+mb, col0 : col0+kb) into kMR-row strips:
/// out[s*kMR*kb + l*kMR + i] = op(A)(row0 + s*kMR + i, col0 + l), rounded
/// through fp16 on the TensorCore path. Rows past mb are zero-filled.
inline void pack_a(Op opa, GemmPrecision precision, const float* a,
                   index_t lda, index_t row0, index_t col0, index_t mb,
                   index_t kb, float* out) {
  const index_t strips = a_strips(mb);
  for (index_t s = 0; s < strips; ++s) {
    const index_t i0 = s * kMR;
    const index_t iv = std::min<index_t>(kMR, mb - i0);
    float* strip = out + s * kMR * kb;
    for (index_t l = 0; l < kb; ++l) {
      float* dst = strip + l * kMR;
      for (index_t i = 0; i < iv; ++i) {
        dst[i] = load_rounded(
            op_element(opa, a, lda, row0 + i0 + i, col0 + l), precision);
      }
      for (index_t i = iv; i < kMR; ++i) dst[i] = 0.0f;
    }
  }
}

/// Packs alpha * op(B)(row0 : row0+kb, col0 : col0+nb) into kNR-column
/// strips: out[t*kNR*kb + l*kNR + j] = alpha * op(B)(row0 + l, col0 + t*kNR
/// + j). Rounding through fp16 happens *before* the alpha scaling — alpha is
/// an fp32 epilogue scalar (as in cublas), not a TensorCore input.
inline void pack_b(Op opb, GemmPrecision precision, float alpha,
                   const float* b, index_t ldb, index_t row0, index_t col0,
                   index_t kb, index_t nb, float* out) {
  const index_t strips = b_strips(nb);
  for (index_t t = 0; t < strips; ++t) {
    const index_t j0 = t * kNR;
    const index_t jv = std::min<index_t>(kNR, nb - j0);
    float* strip = out + t * kNR * kb;
    for (index_t l = 0; l < kb; ++l) {
      float* dst = strip + l * kNR;
      for (index_t j = 0; j < jv; ++j) {
        dst[j] = alpha * load_rounded(
                             op_element(opb, b, ldb, row0 + l, col0 + j0 + j),
                             precision);
      }
      for (index_t j = jv; j < kNR; ++j) dst[j] = 0.0f;
    }
  }
}

/// C(0:mv, 0:nv) += Ap_strip * Bp_strip over kb depth steps. Ap/Bp are one
/// packed strip each (kMR- and kNR-wide); the accumulator tile lives in
/// registers for the whole depth loop. mv/nv trim edge tiles (packing
/// zero-pads, so the depth loop itself is uniform).
///
/// The accumulators are *seeded from C* rather than added to it afterwards:
/// every C element then sees a flat left-to-right addition chain in depth
/// order, so splitting k across gemm calls (or across kKC panels) produces
/// bitwise-identical results. The OOC drivers rely on this — their
/// scheduling optimizations re-slice the same multiply and are tested to not
/// change numerics at all.
///
/// On GCC/Clang the kernel is written with vector extensions — one kMR-wide
/// accumulator per B column — because the autovectorizer, left alone, picks
/// the j dimension and drowns the FMAs in shuffles. The element-wise math is
/// identical to the scalar fallback (same products, same order), so both
/// paths produce the same bits.
#if defined(__GNUC__) || defined(__clang__)
#define ROCQR_GEMM_VECTOR_KERNEL 1
typedef float vmr_t
    __attribute__((vector_size(kMR * sizeof(float)), aligned(4)));
#endif

inline void micro_kernel(index_t kb, const float* ap, const float* bp,
                         float* c, index_t ldc, index_t mv, index_t nv) {
#ifdef ROCQR_GEMM_VECTOR_KERNEL
  if (mv == kMR) {
    // Full-height tile: one vector accumulator per column, seeded from C.
    vmr_t acc[kNR];
    for (index_t j = 0; j < kNR; ++j) {
      if (j < nv) {
        __builtin_memcpy(&acc[j], c + j * ldc, sizeof(vmr_t));
      } else {
        acc[j] = vmr_t{};
      }
    }
    for (index_t l = 0; l < kb; ++l) {
      vmr_t av;
      __builtin_memcpy(&av, ap + l * kMR, sizeof(vmr_t));
      const float* bv = bp + l * kNR;
      for (index_t j = 0; j < kNR; ++j) acc[j] += av * bv[j];
    }
    for (index_t j = 0; j < nv; ++j) {
      __builtin_memcpy(c + j * ldc, &acc[j], sizeof(vmr_t));
    }
    return;
  }
#endif
  float acc[kMR * kNR] = {};
  for (index_t j = 0; j < nv; ++j) {
    const float* cj = c + j * ldc;
    for (index_t i = 0; i < mv; ++i) acc[j * kMR + i] = cj[i];
  }
  for (index_t l = 0; l < kb; ++l) {
    const float* av = ap + l * kMR;
    const float* bv = bp + l * kNR;
    for (index_t j = 0; j < kNR; ++j) {
      const float w = bv[j];
      for (index_t i = 0; i < kMR; ++i) acc[j * kMR + i] += av[i] * w;
    }
  }
  for (index_t j = 0; j < nv; ++j) {
    float* cj = c + j * ldc;
    for (index_t i = 0; i < mv; ++i) cj[i] = acc[j * kMR + i];
  }
}

/// Macro-kernel: all (kMR x kNR) tiles of one packed A block against one
/// packed B strip range [jr0, jr1). C points at the (row0, jc)-block.
inline void macro_kernel(index_t kb, index_t mb, index_t nb, const float* ap,
                         const float* bp, index_t jr0, index_t jr1, float* c,
                         index_t ldc) {
  const index_t mr_strips = a_strips(mb);
  for (index_t jr = jr0; jr < jr1; ++jr) {
    const index_t j0 = jr * kNR;
    const index_t nv = std::min<index_t>(kNR, nb - j0);
    const float* bs = bp + jr * kNR * kb;
    for (index_t ir = 0; ir < mr_strips; ++ir) {
      const index_t i0 = ir * kMR;
      const index_t mv = std::min<index_t>(kMR, mb - i0);
      micro_kernel(kb, ap + ir * kMR * kb, bs, c + i0 + j0 * ldc, ldc, mv,
                   nv);
    }
  }
}

} // namespace rocqr::blas::kernel
