// Level-1 BLAS subset used by the Gram-Schmidt kernels.
#pragma once

#include "common/types.hpp"

namespace rocqr::blas {

/// y += alpha * x
void axpy(index_t n, float alpha, const float* x, index_t incx, float* y,
          index_t incy);

/// x *= alpha
void scal(index_t n, float alpha, float* x, index_t incx);

/// Dot product with double accumulation (matters for CGS stability checks).
double dot(index_t n, const float* x, index_t incx, const float* y,
           index_t incy);

/// Euclidean norm, numerically scaled (avoids overflow/underflow).
double nrm2(index_t n, const float* x, index_t incx);

} // namespace rocqr::blas
