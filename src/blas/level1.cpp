#include "blas/level1.hpp"

#include <cmath>

#include "common/error.hpp"

namespace rocqr::blas {

void axpy(index_t n, float alpha, const float* x, index_t incx, float* y,
          index_t incy) {
  ROCQR_CHECK(n >= 0, "axpy: negative n");
  if (n == 0 || alpha == 0.0f) return;
  if (incx == 1 && incy == 1) {
    for (index_t i = 0; i < n; ++i) y[i] += alpha * x[i];
    return;
  }
  for (index_t i = 0; i < n; ++i) y[i * incy] += alpha * x[i * incx];
}

void scal(index_t n, float alpha, float* x, index_t incx) {
  ROCQR_CHECK(n >= 0, "scal: negative n");
  if (incx == 1) {
    for (index_t i = 0; i < n; ++i) x[i] *= alpha;
    return;
  }
  for (index_t i = 0; i < n; ++i) x[i * incx] *= alpha;
}

double dot(index_t n, const float* x, index_t incx, const float* y,
           index_t incy) {
  ROCQR_CHECK(n >= 0, "dot: negative n");
  double acc = 0.0;
  if (incx == 1 && incy == 1) {
    for (index_t i = 0; i < n; ++i) {
      acc += static_cast<double>(x[i]) * static_cast<double>(y[i]);
    }
    return acc;
  }
  for (index_t i = 0; i < n; ++i) {
    acc += static_cast<double>(x[i * incx]) * static_cast<double>(y[i * incy]);
  }
  return acc;
}

double nrm2(index_t n, const float* x, index_t incx) {
  ROCQR_CHECK(n >= 0, "nrm2: negative n");
  // Scaled sum of squares (LAPACK dlassq style) to dodge overflow/underflow.
  double scale = 0.0;
  double ssq = 1.0;
  for (index_t i = 0; i < n; ++i) {
    const double v = std::fabs(static_cast<double>(x[i * incx]));
    if (v == 0.0) continue;
    if (scale < v) {
      ssq = 1.0 + ssq * (scale / v) * (scale / v);
      scale = v;
    } else {
      ssq += (v / scale) * (v / scale);
    }
  }
  return scale * std::sqrt(ssq);
}

} // namespace rocqr::blas
