#include "blas/gemm.hpp"

#include <vector>

#include "common/error.hpp"
#include "common/half.hpp"

namespace rocqr::blas {

namespace {

void validate(Op opa, Op opb, index_t m, index_t n, index_t k, const float* a,
              index_t lda, const float* b, index_t ldb, const float* c,
              index_t ldc) {
  ROCQR_CHECK(m >= 0 && n >= 0 && k >= 0, "gemm: negative dimension");
  const index_t a_rows = opa == Op::NoTrans ? m : k;
  const index_t b_rows = opb == Op::NoTrans ? k : n;
  ROCQR_CHECK(lda >= (a_rows > 0 ? a_rows : 1), "gemm: lda too small");
  ROCQR_CHECK(ldb >= (b_rows > 0 ? b_rows : 1), "gemm: ldb too small");
  ROCQR_CHECK(ldc >= (m > 0 ? m : 1), "gemm: ldc too small");
  if (m > 0 && n > 0) {
    ROCQR_CHECK(c != nullptr, "gemm: null C");
    if (k > 0) {
      ROCQR_CHECK(a != nullptr && b != nullptr, "gemm: null A or B");
    }
  }
}

float load_rounded(const float* p, GemmPrecision precision) {
  return precision == GemmPrecision::FP16_FP32
             ? static_cast<float>(half(*p))
             : *p;
}

/// Packs op(X) (rows x cols after the op) into a dense column-major buffer,
/// rounding through fp16 when the TensorCore path is selected. Packing makes
/// the multiply kernel transpose-free and stride-1.
void pack(Op op, index_t rows, index_t cols, const float* x, index_t ldx,
          GemmPrecision precision, float* out) {
  if (op == Op::NoTrans) {
    for (index_t j = 0; j < cols; ++j) {
      for (index_t i = 0; i < rows; ++i) {
        out[i + j * rows] = load_rounded(&x[i + j * ldx], precision);
      }
    }
  } else {
    for (index_t j = 0; j < cols; ++j) {
      for (index_t i = 0; i < rows; ++i) {
        out[i + j * rows] = load_rounded(&x[j + i * ldx], precision);
      }
    }
  }
}

} // namespace

void gemm(Op opa, Op opb, index_t m, index_t n, index_t k, float alpha,
          const float* a, index_t lda, const float* b, index_t ldb, float beta,
          float* c, index_t ldc, GemmPrecision precision, ThreadPool* pool) {
  validate(opa, opb, m, n, k, a, lda, b, ldb, c, ldc);
  if (m == 0 || n == 0) return;

  ThreadPool& tp = pool != nullptr ? *pool : ThreadPool::global();

  if (beta != 1.0f) {
    tp.parallel_for(n, [&](index_t j0, index_t j1) {
      for (index_t j = j0; j < j1; ++j) {
        float* col = c + j * ldc;
        if (beta == 0.0f) {
          for (index_t i = 0; i < m; ++i) col[i] = 0.0f;
        } else {
          for (index_t i = 0; i < m; ++i) col[i] *= beta;
        }
      }
    });
  }
  if (alpha == 0.0f || k == 0) return;

  // Pack both operands once. At test scale (<= a few k) this costs a few
  // megabytes and removes every transpose/precision branch from the kernel.
  std::vector<float> ap(static_cast<size_t>(m) * static_cast<size_t>(k));
  std::vector<float> bp(static_cast<size_t>(k) * static_cast<size_t>(n));
  pack(opa, m, k, a, lda, precision, ap.data());
  pack(opb, k, n, b, ldb, precision, bp.data());

  tp.parallel_for(n, [&](index_t j0, index_t j1) {
    for (index_t j = j0; j < j1; ++j) {
      float* cj = c + j * ldc;
      const float* bj = bp.data() + j * k;
      for (index_t l = 0; l < k; ++l) {
        const float w = alpha * bj[l]; // fp32 scaling, as cublas does
        if (w == 0.0f) continue;
        const float* al = ap.data() + l * m;
        for (index_t i = 0; i < m; ++i) cj[i] += w * al[i];
      }
    }
  });
}

void gemm_reference(Op opa, Op opb, index_t m, index_t n, index_t k,
                    float alpha, const float* a, index_t lda, const float* b,
                    index_t ldb, float beta, float* c, index_t ldc,
                    GemmPrecision precision) {
  validate(opa, opb, m, n, k, a, lda, b, ldb, c, ldc);
  const auto load_a = [&](index_t i, index_t l) {
    const float* p = opa == Op::NoTrans ? &a[i + l * lda] : &a[l + i * lda];
    return load_rounded(p, precision);
  };
  const auto load_b = [&](index_t l, index_t j) {
    const float* p = opb == Op::NoTrans ? &b[l + j * ldb] : &b[j + l * ldb];
    return load_rounded(p, precision);
  };
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      // Double accumulation: the reference serves as ground truth in tests,
      // so it should be strictly more accurate than the production kernel.
      double acc = 0.0;
      for (index_t l = 0; l < k; ++l) {
        acc += static_cast<double>(load_a(i, l)) *
               static_cast<double>(load_b(l, j));
      }
      const double prior =
          beta == 0.0f
              ? 0.0
              : static_cast<double>(beta) * static_cast<double>(c[i + j * ldc]);
      c[i + j * ldc] =
          static_cast<float>(static_cast<double>(alpha) * acc + prior);
    }
  }
}

} // namespace rocqr::blas
