#include "blas/gemm.hpp"

#include <algorithm>
#include <atomic>
#include <vector>

#include "blas/gemm_kernel.hpp"
#include "common/error.hpp"
#include "common/half.hpp"
#include "common/telemetry.hpp"

namespace rocqr::blas {

namespace {

void validate(Op opa, Op opb, index_t m, index_t n, index_t k, const float* a,
              index_t lda, const float* b, index_t ldb, const float* c,
              index_t ldc) {
  ROCQR_CHECK(m >= 0 && n >= 0 && k >= 0, "gemm: negative dimension");
  const index_t a_rows = opa == Op::NoTrans ? m : k;
  const index_t b_rows = opb == Op::NoTrans ? k : n;
  ROCQR_CHECK(lda >= (a_rows > 0 ? a_rows : 1), "gemm: lda too small");
  ROCQR_CHECK(ldb >= (b_rows > 0 ? b_rows : 1), "gemm: ldb too small");
  ROCQR_CHECK(ldc >= (m > 0 ? m : 1), "gemm: ldc too small");
  if (m > 0 && n > 0) {
    ROCQR_CHECK(c != nullptr, "gemm: null C");
    if (k > 0) {
      ROCQR_CHECK(a != nullptr && b != nullptr, "gemm: null A or B");
    }
  }
}

float load_rounded(const float* p, GemmPrecision precision) {
  return precision == GemmPrecision::FP16_FP32
             ? static_cast<float>(half(*p))
             : *p;
}

/// Packs op(X) (rows x cols after the op) into a dense column-major buffer —
/// the baseline kernel's whole-operand pack.
void pack_whole(Op op, index_t rows, index_t cols, const float* x, index_t ldx,
                GemmPrecision precision, float* out) {
  if (op == Op::NoTrans) {
    for (index_t j = 0; j < cols; ++j) {
      for (index_t i = 0; i < rows; ++i) {
        out[i + j * rows] = load_rounded(&x[i + j * ldx], precision);
      }
    }
  } else {
    for (index_t j = 0; j < cols; ++j) {
      for (index_t i = 0; i < rows; ++i) {
        out[i + j * rows] = load_rounded(&x[j + i * ldx], precision);
      }
    }
  }
}

/// Scales C by beta over the pool — shared prologue of both kernels.
void scale_c(ThreadPool& tp, index_t m, index_t n, float beta, float* c,
             index_t ldc) {
  if (beta == 1.0f) return;
  tp.parallel_for(n, [&](index_t j0, index_t j1) {
    for (index_t j = j0; j < j1; ++j) {
      float* col = c + j * ldc;
      if (beta == 0.0f) {
        for (index_t i = 0; i < m; ++i) col[i] = 0.0f;
      } else {
        for (index_t i = 0; i < m; ++i) col[i] *= beta;
      }
    }
  });
}

std::atomic<std::int64_t> g_pack_allocations{0};

/// Thread-local pack scratch, grown monotonically and reused across calls.
/// Workers live as long as the pool, so in steady state no gemm call
/// allocates; every growth event is counted for the bench assertion.
float* ensure_pack_capacity(std::vector<float>& buf, size_t need) {
  if (buf.size() < need) {
    g_pack_allocations.fetch_add(1, std::memory_order_relaxed);
    auto& reg = telemetry::MetricsRegistry::global();
    reg.counter("blas.pack_allocations").increment();
    reg.histogram("blas.pack_bytes")
        .observe(static_cast<std::int64_t>(need) * 4);
    buf.resize(need);
  }
  return buf.data();
}

thread_local std::vector<float> tl_pack_a;
thread_local std::vector<float> tl_pack_b;

} // namespace

std::int64_t gemm_pack_allocations() {
  return g_pack_allocations.load(std::memory_order_relaxed);
}

void gemm(Op opa, Op opb, index_t m, index_t n, index_t k, float alpha,
          const float* a, index_t lda, const float* b, index_t ldb, float beta,
          float* c, index_t ldc, GemmPrecision precision, ThreadPool* pool) {
  namespace kn = kernel;
  validate(opa, opb, m, n, k, a, lda, b, ldb, c, ldc);
  if (m == 0 || n == 0) return;

  ThreadPool& tp = pool != nullptr ? *pool : ThreadPool::global();
  scale_c(tp, m, n, beta, c, ldc);
  if (alpha == 0.0f || k == 0) return;

  for (index_t jc = 0; jc < n; jc += kn::kNC) {
    const index_t nb = std::min<index_t>(kn::kNC, n - jc);
    const index_t jr_strips = kn::b_strips(nb);
    for (index_t pc = 0; pc < k; pc += kn::kKC) {
      const index_t kb = std::min<index_t>(kn::kKC, k - pc);
      // The submitting thread packs the B panel once; every A block of this
      // (jc, pc) round reads it, so it stays hot in the outer cache.
      float* bp = ensure_pack_capacity(tl_pack_b, kn::packed_b_size(kb, nb));
      kn::pack_b(opb, precision, alpha, b, ldb, pc, jc, kb, nb, bp);

      const index_t ic_blocks = (m + kn::kMC - 1) / kn::kMC;
      tp.parallel_for_2d(
          ic_blocks, jr_strips,
          [&](index_t i0, index_t i1, index_t jr0, index_t jr1) {
            for (index_t ic = i0; ic < i1; ++ic) {
              const index_t row0 = ic * kn::kMC;
              const index_t mb = std::min<index_t>(kn::kMC, m - row0);
              // Per-thread A pack: threads sharing an A block along the j
              // split re-pack it rather than synchronize — pack cost is
              // O(mb*kb) against O(mb*kb*nb) of multiply work.
              float* ap = ensure_pack_capacity(tl_pack_a,
                                               kn::packed_a_size(mb, kb));
              kn::pack_a(opa, precision, a, lda, row0, pc, mb, kb, ap);
              kn::macro_kernel(kb, mb, nb, ap, bp, jr0, jr1,
                               c + row0 + jc * ldc, ldc);
            }
          });
    }
  }
}

void gemm_baseline(Op opa, Op opb, index_t m, index_t n, index_t k,
                   float alpha, const float* a, index_t lda, const float* b,
                   index_t ldb, float beta, float* c, index_t ldc,
                   GemmPrecision precision, ThreadPool* pool) {
  validate(opa, opb, m, n, k, a, lda, b, ldb, c, ldc);
  if (m == 0 || n == 0) return;

  ThreadPool& tp = pool != nullptr ? *pool : ThreadPool::global();
  scale_c(tp, m, n, beta, c, ldc);
  if (alpha == 0.0f || k == 0) return;

  // Pack both operands once. This removes every transpose/precision branch
  // from the multiply loop but costs O(m*k + k*n) fresh scratch per call and
  // streams the whole packed A once per column of C.
  std::vector<float> ap(static_cast<size_t>(m) * static_cast<size_t>(k));
  std::vector<float> bp(static_cast<size_t>(k) * static_cast<size_t>(n));
  pack_whole(opa, m, k, a, lda, precision, ap.data());
  pack_whole(opb, k, n, b, ldb, precision, bp.data());

  tp.parallel_for(n, [&](index_t j0, index_t j1) {
    for (index_t j = j0; j < j1; ++j) {
      float* cj = c + j * ldc;
      const float* bj = bp.data() + j * k;
      for (index_t l = 0; l < k; ++l) {
        const float w = alpha * bj[l]; // fp32 scaling, as cublas does
        if (w == 0.0f) continue;
        const float* al = ap.data() + l * m;
        for (index_t i = 0; i < m; ++i) cj[i] += w * al[i];
      }
    }
  });
}

void gemm_reference(Op opa, Op opb, index_t m, index_t n, index_t k,
                    float alpha, const float* a, index_t lda, const float* b,
                    index_t ldb, float beta, float* c, index_t ldc,
                    GemmPrecision precision) {
  validate(opa, opb, m, n, k, a, lda, b, ldb, c, ldc);
  const auto load_a = [&](index_t i, index_t l) {
    const float* p = opa == Op::NoTrans ? &a[i + l * lda] : &a[l + i * lda];
    return load_rounded(p, precision);
  };
  const auto load_b = [&](index_t l, index_t j) {
    const float* p = opb == Op::NoTrans ? &b[l + j * ldb] : &b[j + l * ldb];
    return load_rounded(p, precision);
  };
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      // Double accumulation: the reference serves as ground truth in tests,
      // so it should be strictly more accurate than the production kernel.
      double acc = 0.0;
      for (index_t l = 0; l < k; ++l) {
        acc += static_cast<double>(load_a(i, l)) *
               static_cast<double>(load_b(l, j));
      }
      const double prior =
          beta == 0.0f
              ? 0.0
              : static_cast<double>(beta) * static_cast<double>(c[i + j * ldc]);
      c[i + j * ldc] =
          static_cast<float>(static_cast<double>(alpha) * acc + prior);
    }
  }
}

} // namespace rocqr::blas
