// Host GEMM: C = alpha * op(A) * op(B) + beta * C, column-major.
//
// Two precision paths:
//  - FP32       : plain single-precision ("CUDA core SGEMM" analogue).
//  - FP16_FP32  : inputs rounded element-wise to IEEE binary16 before the
//                 multiply, accumulation in fp32 — exactly the TensorCore
//                 TC-GEMM numerical contract this reproduction studies.
//
// The production path is a cache-blocked, packed kernel (register tile and
// tiling parameters in gemm_kernel.hpp) parallelized over both output
// dimensions through ThreadPool::parallel_for_2d. Pack buffers are
// thread-local and reused across calls; gemm_pack_allocations() exposes the
// buffer-growth count so benchmarks can assert steady-state makes zero
// allocations. The seed pack-everything-then-multiply scheme survives as
// gemm_baseline for A/B benchmarking.
#pragma once

#include <cstdint>

#include "common/thread_pool.hpp"
#include "common/types.hpp"

namespace rocqr::blas {

enum class Op { NoTrans, Trans };

enum class GemmPrecision {
  FP32,      ///< fp32 inputs, fp32 accumulate
  FP16_FP32, ///< fp16-rounded inputs, fp32 accumulate (TensorCore contract)
};

/// Rows of op(X) for a matrix X that is m-by-n before the op.
inline index_t op_rows(Op op, index_t rows, index_t cols) {
  return op == Op::NoTrans ? rows : cols;
}
inline index_t op_cols(Op op, index_t rows, index_t cols) {
  return op == Op::NoTrans ? cols : rows;
}

/// General matrix multiply. Shapes: op(A) is m x k, op(B) is k x n,
/// C is m x n. Leading dimensions must satisfy the usual BLAS constraints
/// (lda >= rows of A as stored, etc.). Throws InvalidArgument on violation.
void gemm(Op opa, Op opb, index_t m, index_t n, index_t k, float alpha,
          const float* a, index_t lda, const float* b, index_t ldb, float beta,
          float* c, index_t ldc, GemmPrecision precision = GemmPrecision::FP32,
          ThreadPool* pool = nullptr);

/// The pre-blocking kernel (pack both operands whole, then multiply): kept
/// as the benchmark baseline the blocked kernel is measured against, and as
/// a second oracle in tests. Allocates O(m*k + k*n) scratch per call.
void gemm_baseline(Op opa, Op opb, index_t m, index_t n, index_t k,
                   float alpha, const float* a, index_t lda, const float* b,
                   index_t ldb, float beta, float* c, index_t ldc,
                   GemmPrecision precision = GemmPrecision::FP32,
                   ThreadPool* pool = nullptr);

/// Number of times any thread grew its thread-local pack buffer, process
/// wide. Steady-state gemm calls (same or smaller shapes) must not move
/// this counter — bench/micro_host_kernels asserts exactly that.
std::int64_t gemm_pack_allocations();

/// Unblocked triple-loop reference used to validate the blocked kernel.
void gemm_reference(Op opa, Op opb, index_t m, index_t n, index_t k,
                    float alpha, const float* a, index_t lda, const float* b,
                    index_t ldb, float beta, float* c, index_t ldc,
                    GemmPrecision precision = GemmPrecision::FP32);

/// FLOP count convention used throughout the project (paper's convention).
inline flops_t gemm_flops(index_t m, index_t n, index_t k) {
  return 2 * static_cast<flops_t>(m) * static_cast<flops_t>(n) *
         static_cast<flops_t>(k);
}

} // namespace rocqr::blas
