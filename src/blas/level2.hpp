// Level-2 BLAS subset: matrix-vector products for the Gram-Schmidt kernels
// (the projection coefficients r = Qᵀa and the update u -= Q r are GEMVs).
#pragma once

#include "common/types.hpp"

namespace rocqr::blas {

enum class Op; // from gemm.hpp

/// y := alpha * op(A) * x + beta * y. A is m x n as stored; op(A) is
/// m x n (NoTrans) or n x m (Trans).
void gemv(Op op, index_t m, index_t n, float alpha, const float* a,
          index_t lda, const float* x, index_t incx, float beta, float* y,
          index_t incy);

/// A := alpha * x * yᵀ + A (rank-1 update). A is m x n.
void ger(index_t m, index_t n, float alpha, const float* x, index_t incx,
         const float* y, index_t incy, float* a, index_t lda);

} // namespace rocqr::blas
