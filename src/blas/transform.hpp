// Layout transforms: submatrix copy, out-of-place transpose, precision
// round-trips. These model the pack/unpack steps around tile transfers.
#pragma once

#include "common/types.hpp"

namespace rocqr::blas {

/// dst(0:m, 0:n) = src(0:m, 0:n), both column-major with leading dimensions.
void copy_matrix(index_t m, index_t n, const float* src, index_t ld_src,
                 float* dst, index_t ld_dst);

/// dst(j, i) = src(i, j); dst is n x m.
void transpose(index_t m, index_t n, const float* src, index_t ld_src,
               float* dst, index_t ld_dst);

/// In-place element-wise rounding through IEEE binary16 (simulates storing
/// a tile in fp16 on the device and reading it back).
void round_to_half(index_t m, index_t n, float* x, index_t ldx);

/// Fills with a constant.
void fill(index_t m, index_t n, float value, float* x, index_t ldx);

/// Sets the strict lower triangle to zero (used to clean R factors).
void zero_lower_triangle(index_t m, index_t n, float* x, index_t ldx);

} // namespace rocqr::blas
