#include "blas/trsm.hpp"

#include <algorithm>

#include "blas/gemm.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace rocqr::blas {

namespace {

/// Column-block width for the blocked right-solve: wide enough that the
/// trailing gemm update dominates, small enough that the diagonal solve
/// stays cache-resident.
constexpr index_t kTrsmBlock = 64;

/// Minimum m*n before the column-independent solves go through the pool.
constexpr index_t kParallelWork = 1 << 15;

void trsm_right_upper_unblocked(index_t m, index_t n, const float* r,
                                index_t ldr, float* b, index_t ldb) {
  // Solve X R = B column by column: X(:,j) = (B(:,j) - sum_{l<j} X(:,l) R(l,j)) / R(j,j)
  for (index_t j = 0; j < n; ++j) {
    float* bj = b + j * ldb;
    for (index_t l = 0; l < j; ++l) {
      const float rlj = r[l + j * ldr];
      if (rlj == 0.0f) continue;
      const float* bl = b + l * ldb;
      for (index_t i = 0; i < m; ++i) bj[i] -= rlj * bl[i];
    }
    const float rjj = r[j + j * ldr];
    ROCQR_CHECK(rjj != 0.0f, "trsm_right_upper: singular R");
    const float inv = 1.0f / rjj;
    for (index_t i = 0; i < m; ++i) bj[i] *= inv;
  }
}

/// Runs body(j) over [0, n), through the pool when the total work is large
/// enough to amortize the dispatch. Per-column math is unchanged either way.
template <typename Body>
void for_each_column(index_t n, index_t work, const Body& body) {
  if (work >= kParallelWork && n > 1) {
    ThreadPool::global().parallel_for(n, [&](index_t j0, index_t j1) {
      for (index_t j = j0; j < j1; ++j) body(j);
    });
  } else {
    for (index_t j = 0; j < n; ++j) body(j);
  }
}

} // namespace

void trsm_right_upper(index_t m, index_t n, const float* r, index_t ldr,
                      float* b, index_t ldb) {
  ROCQR_CHECK(m >= 0 && n >= 0, "trsm_right_upper: negative dimension");
  ROCQR_CHECK(ldr >= (n > 0 ? n : 1), "trsm_right_upper: ldr too small");
  ROCQR_CHECK(ldb >= (m > 0 ? m : 1), "trsm_right_upper: ldb too small");
  if (n <= kTrsmBlock) {
    trsm_right_upper_unblocked(m, n, r, ldr, b, ldb);
    return;
  }
  // Blocked: solve a diagonal block, then fold the solved columns into the
  // remaining right-hand sides through the blocked gemm — the O(m n^2) bulk
  // of the solve runs in the cache-tiled kernel instead of axpy sweeps.
  for (index_t j0 = 0; j0 < n; j0 += kTrsmBlock) {
    const index_t jb = std::min<index_t>(kTrsmBlock, n - j0);
    if (j0 > 0) {
      gemm(Op::NoTrans, Op::NoTrans, m, jb, j0, -1.0f, b, ldb,
           r + j0 * ldr, ldr, 1.0f, b + j0 * ldb, ldb);
    }
    trsm_right_upper_unblocked(m, jb, r + j0 + j0 * ldr, ldr, b + j0 * ldb,
                               ldb);
  }
}

void trsm_left_upper(index_t m, index_t n, const float* r, index_t ldr,
                     float* b, index_t ldb) {
  ROCQR_CHECK(m >= 0 && n >= 0, "trsm_left_upper: negative dimension");
  ROCQR_CHECK(ldr >= (m > 0 ? m : 1), "trsm_left_upper: ldr too small");
  ROCQR_CHECK(ldb >= (m > 0 ? m : 1), "trsm_left_upper: ldb too small");
  // Back substitution, independent per right-hand side.
  for_each_column(n, m * m * n, [&](index_t j) {
    float* bj = b + j * ldb;
    for (index_t i = m - 1; i >= 0; --i) {
      float acc = bj[i];
      for (index_t l = i + 1; l < m; ++l) acc -= r[i + l * ldr] * bj[l];
      const float rii = r[i + i * ldr];
      ROCQR_CHECK(rii != 0.0f, "trsm_left_upper: singular R");
      bj[i] = acc / rii;
    }
  });
}

void trsm_left_lower(index_t m, index_t n, bool unit_diagonal, const float* l,
                     index_t ldl, float* b, index_t ldb) {
  ROCQR_CHECK(m >= 0 && n >= 0, "trsm_left_lower: negative dimension");
  ROCQR_CHECK(ldl >= (m > 0 ? m : 1), "trsm_left_lower: ldl too small");
  ROCQR_CHECK(ldb >= (m > 0 ? m : 1), "trsm_left_lower: ldb too small");
  // Forward substitution, independent per right-hand side.
  for_each_column(n, m * m * n, [&](index_t j) {
    float* bj = b + j * ldb;
    for (index_t i = 0; i < m; ++i) {
      double acc = bj[i];
      for (index_t p = 0; p < i; ++p) {
        acc -= static_cast<double>(l[i + p * ldl]) * static_cast<double>(bj[p]);
      }
      if (!unit_diagonal) {
        const float lii = l[i + i * ldl];
        ROCQR_CHECK(lii != 0.0f, "trsm_left_lower: singular L");
        acc /= static_cast<double>(lii);
      }
      bj[i] = static_cast<float>(acc);
    }
  });
}

void trsm_left_upper_trans(index_t m, index_t n, const float* r, index_t ldr,
                           float* b, index_t ldb) {
  ROCQR_CHECK(m >= 0 && n >= 0, "trsm_left_upper_trans: negative dimension");
  ROCQR_CHECK(ldr >= (m > 0 ? m : 1), "trsm_left_upper_trans: ldr too small");
  ROCQR_CHECK(ldb >= (m > 0 ? m : 1), "trsm_left_upper_trans: ldb too small");
  // Rᵀ is lower triangular with (Rᵀ)(i,p) = r(p,i): forward substitution,
  // independent per right-hand side.
  for_each_column(n, m * m * n, [&](index_t j) {
    float* bj = b + j * ldb;
    for (index_t i = 0; i < m; ++i) {
      double acc = bj[i];
      for (index_t p = 0; p < i; ++p) {
        acc -= static_cast<double>(r[p + i * ldr]) * static_cast<double>(bj[p]);
      }
      const float rii = r[i + i * ldr];
      ROCQR_CHECK(rii != 0.0f, "trsm_left_upper_trans: singular R");
      bj[i] = static_cast<float>(acc / static_cast<double>(rii));
    }
  });
}

void syrk_upper_t(index_t n, index_t k, float alpha, const float* a,
                  index_t lda, float beta, float* c, index_t ldc) {
  ROCQR_CHECK(n >= 0 && k >= 0, "syrk_upper_t: negative dimension");
  ROCQR_CHECK(lda >= (k > 0 ? k : 1), "syrk_upper_t: lda too small");
  ROCQR_CHECK(ldc >= (n > 0 ? n : 1), "syrk_upper_t: ldc too small");
  // Columns of the upper triangle are independent; double-accumulated dots
  // per element, unchanged from the serial form.
  for_each_column(n, n * (n + 1) / 2 * k, [&](index_t j) {
    for (index_t i = 0; i <= j; ++i) {
      double acc = 0.0;
      const float* ai = a + i * lda;
      const float* aj = a + j * lda;
      for (index_t l = 0; l < k; ++l) {
        acc += static_cast<double>(ai[l]) * static_cast<double>(aj[l]);
      }
      const float prior = beta == 0.0f ? 0.0f : beta * c[i + j * ldc];
      c[i + j * ldc] = alpha * static_cast<float>(acc) + prior;
    }
  });
}

} // namespace rocqr::blas
