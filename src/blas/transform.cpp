#include "blas/transform.hpp"

#include "common/error.hpp"
#include "common/half.hpp"

namespace rocqr::blas {

void copy_matrix(index_t m, index_t n, const float* src, index_t ld_src,
                 float* dst, index_t ld_dst) {
  ROCQR_CHECK(m >= 0 && n >= 0, "copy_matrix: negative dimension");
  ROCQR_CHECK(ld_src >= (m > 0 ? m : 1) && ld_dst >= (m > 0 ? m : 1),
              "copy_matrix: leading dimension too small");
  for (index_t j = 0; j < n; ++j) {
    const float* s = src + j * ld_src;
    float* d = dst + j * ld_dst;
    for (index_t i = 0; i < m; ++i) d[i] = s[i];
  }
}

void transpose(index_t m, index_t n, const float* src, index_t ld_src,
               float* dst, index_t ld_dst) {
  ROCQR_CHECK(m >= 0 && n >= 0, "transpose: negative dimension");
  ROCQR_CHECK(ld_src >= (m > 0 ? m : 1), "transpose: ld_src too small");
  ROCQR_CHECK(ld_dst >= (n > 0 ? n : 1), "transpose: ld_dst too small");
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      dst[j + i * ld_dst] = src[i + j * ld_src];
    }
  }
}

void round_to_half(index_t m, index_t n, float* x, index_t ldx) {
  for (index_t j = 0; j < n; ++j) {
    float* col = x + j * ldx;
    for (index_t i = 0; i < m; ++i) col[i] = static_cast<float>(half(col[i]));
  }
}

void fill(index_t m, index_t n, float value, float* x, index_t ldx) {
  for (index_t j = 0; j < n; ++j) {
    float* col = x + j * ldx;
    for (index_t i = 0; i < m; ++i) col[i] = value;
  }
}

void zero_lower_triangle(index_t m, index_t n, float* x, index_t ldx) {
  for (index_t j = 0; j < n; ++j) {
    float* col = x + j * ldx;
    for (index_t i = j + 1; i < m; ++i) col[i] = 0.0f;
  }
}

} // namespace rocqr::blas
