#include "blas/level2.hpp"

#include "blas/gemm.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace rocqr::blas {

namespace {

/// Minimum m*n before level-2 loops go through the pool; below this the
/// dispatch overhead beats the win. Per-element math is identical either
/// way, so results do not depend on the path taken.
constexpr index_t kParallelWork = 1 << 15;

} // namespace

void gemv(Op op, index_t m, index_t n, float alpha, const float* a,
          index_t lda, const float* x, index_t incx, float beta, float* y,
          index_t incy) {
  ROCQR_CHECK(m >= 0 && n >= 0, "gemv: negative dimension");
  ROCQR_CHECK(lda >= (m > 0 ? m : 1), "gemv: lda too small");
  const index_t ylen = op == Op::NoTrans ? m : n;
  const index_t xlen = op == Op::NoTrans ? n : m;
  if (ylen == 0) return;
  ROCQR_CHECK(y != nullptr, "gemv: null y");

  if (beta != 1.0f) {
    for (index_t i = 0; i < ylen; ++i) {
      y[i * incy] = beta == 0.0f ? 0.0f : beta * y[i * incy];
    }
  }
  if (alpha == 0.0f || xlen == 0) return;
  ROCQR_CHECK(a != nullptr && x != nullptr, "gemv: null A or x");

  const bool pooled = m * n >= kParallelWork;
  if (op == Op::NoTrans) {
    // y += alpha * A x, column-major friendly: axpy per column. Rows are
    // independent, so the pool splits the row range.
    const auto rows = [&](index_t i0, index_t i1) {
      for (index_t j = 0; j < n; ++j) {
        const float w = alpha * x[j * incx];
        if (w == 0.0f) continue;
        const float* col = a + j * lda;
        for (index_t i = i0; i < i1; ++i) y[i * incy] += w * col[i];
      }
    };
    if (pooled) {
      ThreadPool::global().parallel_for(m, rows);
    } else {
      rows(0, m);
    }
  } else {
    // y_j += alpha * (A(:,j) · x): dot per column, double accumulation.
    // Columns are independent, so the pool splits the column range.
    const auto cols = [&](index_t j0, index_t j1) {
      for (index_t j = j0; j < j1; ++j) {
        const float* col = a + j * lda;
        double acc = 0.0;
        for (index_t i = 0; i < m; ++i) {
          acc += static_cast<double>(col[i]) * static_cast<double>(x[i * incx]);
        }
        y[j * incy] += alpha * static_cast<float>(acc);
      }
    };
    if (pooled) {
      ThreadPool::global().parallel_for(n, cols);
    } else {
      cols(0, n);
    }
  }
}

void ger(index_t m, index_t n, float alpha, const float* x, index_t incx,
         const float* y, index_t incy, float* a, index_t lda) {
  ROCQR_CHECK(m >= 0 && n >= 0, "ger: negative dimension");
  ROCQR_CHECK(lda >= (m > 0 ? m : 1), "ger: lda too small");
  if (m == 0 || n == 0 || alpha == 0.0f) return;
  ROCQR_CHECK(a != nullptr && x != nullptr && y != nullptr, "ger: null operand");
  const auto cols = [&](index_t j0, index_t j1) {
    for (index_t j = j0; j < j1; ++j) {
      const float w = alpha * y[j * incy];
      if (w == 0.0f) continue;
      float* col = a + j * lda;
      for (index_t i = 0; i < m; ++i) col[i] += w * x[i * incx];
    }
  };
  if (m * n >= kParallelWork && n > 1) {
    ThreadPool::global().parallel_for(n, cols);
  } else {
    cols(0, n);
  }
}

} // namespace rocqr::blas
