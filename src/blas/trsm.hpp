// Triangular solves against an upper-triangular R — the two variants the QR
// stack needs (CholeskyQR-style panel orthogonalization and test oracles).
#pragma once

#include "common/types.hpp"

namespace rocqr::blas {

/// X := B * inv(R).  B is m x n, R is n x n upper triangular (non-unit
/// diagonal). Solved in place in B. This is how Q is recovered from A and R.
void trsm_right_upper(index_t m, index_t n, const float* r, index_t ldr,
                      float* b, index_t ldb);

/// X := inv(R) * B.  R is m x m upper triangular, B is m x n, in place.
void trsm_left_upper(index_t m, index_t n, const float* r, index_t ldr,
                     float* b, index_t ldb);

/// C := alpha * Aᵀ * A + beta * C, C n x n symmetric, only the upper
/// triangle (including diagonal) is written. A is k x n.
void syrk_upper_t(index_t n, index_t k, float alpha, const float* a,
                  index_t lda, float beta, float* c, index_t ldc);

/// X := inv(L) * B with L m x m lower triangular, B m x n, in place.
/// `unit_diagonal` treats L's diagonal as ones (the LU convention).
void trsm_left_lower(index_t m, index_t n, bool unit_diagonal, const float* l,
                     index_t ldl, float* b, index_t ldb);

/// X := inv(Rᵀ) * B with R m x m *upper* triangular (so Rᵀ is lower), B
/// m x n, in place — the Cholesky panel solve R12 = R11⁻ᵀ A12.
void trsm_left_upper_trans(index_t m, index_t n, const float* r, index_t ldr,
                           float* b, index_t ldb);

} // namespace rocqr::blas
