// Small string/format helpers used by reports, traces and error messages.
#pragma once

#include <string>

#include "common/types.hpp"

namespace rocqr {

/// "1.50 GB", "640.0 MB", "12 B" — powers of 1024.
std::string format_bytes(bytes_t bytes);

/// "1408 ms", "12.93 s", "37.9 s" — picks a readable unit.
std::string format_seconds(double seconds);

/// "99.9 TFLOP/s" style rate.
std::string format_flops_rate(double flops_per_second);

/// "65536x131072" shape string.
std::string format_shape(index_t rows, index_t cols);

/// Fixed-point with `digits` decimals, e.g. format_fixed(3.14159, 2) = "3.14".
std::string format_fixed(double value, int digits);

/// Left-pads (or truncates never) a string to at least `width` columns.
std::string pad_left(const std::string& s, int width);

/// Right-pads a string to at least `width` columns.
std::string pad_right(const std::string& s, int width);

} // namespace rocqr
