#include "common/thread_pool.hpp"

#include <algorithm>

namespace rocqr {

ThreadPool::ThreadPool(unsigned threads) {
  unsigned n = threads != 0 ? threads : std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  // The calling thread participates in every parallel_for, so spawn n-1.
  workers_.reserve(n - 1);
  tasks_.resize(n > 1 ? n - 1 : 0);
  for (unsigned i = 0; i + 1 < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::parallel_for(index_t n,
                              const std::function<void(index_t, index_t)>& body) {
  if (n <= 0) return;
  const index_t parts = static_cast<index_t>(size());
  if (parts == 1 || n == 1) {
    body(0, n);
    return;
  }
  const index_t chunk = (n + parts - 1) / parts;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++generation_;
    pending_ = 0;
    first_error_ = nullptr;
    for (index_t w = 0; w < static_cast<index_t>(tasks_.size()); ++w) {
      const index_t begin = std::min(n, (w + 1) * chunk); // caller takes [0, chunk)
      const index_t end = std::min(n, (w + 2) * chunk);
      tasks_[static_cast<size_t>(w)] = Task{&body, begin, end};
      if (begin < end) ++pending_;
    }
  }
  work_ready_.notify_all();

  // The caller runs the first chunk itself.
  std::exception_ptr caller_error;
  try {
    body(0, std::min(n, chunk));
  } catch (...) {
    caller_error = std::current_exception();
  }

  std::unique_lock<std::mutex> lock(mutex_);
  work_done_.wait(lock, [this] { return pending_ == 0; });
  if (caller_error) std::rethrow_exception(caller_error);
  if (first_error_) std::rethrow_exception(first_error_);
}

void ThreadPool::worker_loop(unsigned worker_index) {
  std::uint64_t seen_generation = 0;
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [&] {
        return shutting_down_ || generation_ != seen_generation;
      });
      if (shutting_down_) return;
      seen_generation = generation_;
      task = tasks_[worker_index];
      if (task.begin >= task.end) continue; // empty slice this round
    }
    std::exception_ptr error;
    try {
      (*task.body)(task.begin, task.end);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error && !first_error_) first_error_ = error;
      if (--pending_ == 0) work_done_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

} // namespace rocqr
