#include "common/thread_pool.hpp"

#include <algorithm>
#include <cmath>

#include "common/telemetry.hpp"

namespace rocqr {

namespace {

/// Pool occupancy metrics, interned once (the registry lookup is too heavy
/// for the per-round path).
struct PoolMetrics {
  telemetry::Counter& rounds;
  telemetry::Counter& nested_serial_rounds;
  telemetry::Histogram& round_width;
  telemetry::Gauge& queue_depth;

  static PoolMetrics& get() {
    auto& reg = telemetry::MetricsRegistry::global();
    static PoolMetrics* m = new PoolMetrics{
        reg.counter("pool.rounds"), reg.counter("pool.nested_serial_rounds"),
        reg.histogram("pool.round_width"), reg.gauge("pool.queue_depth")};
    return *m;
  }
};

/// Set while the current thread executes a parallel_for body — on the
/// caller's own chunk as much as on a worker's. Any parallel_for issued with
/// the flag set is nested and must not touch pool state: the outer round
/// owns tasks_/pending_/generation_, and a worker blocking on a second round
/// would deadlock the pool against itself.
thread_local bool tl_in_pool_body = false;

struct BodyRegionGuard {
  bool prev;
  BodyRegionGuard() : prev(tl_in_pool_body) { tl_in_pool_body = true; }
  ~BodyRegionGuard() { tl_in_pool_body = prev; }
};

} // namespace

bool ThreadPool::in_parallel_region() { return tl_in_pool_body; }

ThreadPool::ThreadPool(unsigned threads) {
  unsigned n = threads != 0 ? threads : std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  // The calling thread participates in every parallel_for, so spawn n-1.
  workers_.reserve(n - 1);
  tasks_.resize(n > 1 ? n - 1 : 0);
  for (unsigned i = 0; i + 1 < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::parallel_for(index_t n,
                              const std::function<void(index_t, index_t)>& body) {
  if (n <= 0) return;
  const index_t parts = static_cast<index_t>(size());
  if (tl_in_pool_body || parts == 1 || n == 1) {
    // Nested (or trivially serial) call: run the whole range inline. The
    // guard still marks the region so doubly-nested calls stay serial too.
    PoolMetrics::get().nested_serial_rounds.increment();
    BodyRegionGuard guard;
    body(0, n);
    return;
  }
  PoolMetrics::get().rounds.increment();
  PoolMetrics::get().round_width.observe(n);
  // One round at a time: a second host thread submitting concurrently would
  // otherwise race on tasks_/generation_ and strand workers mid-round.
  std::lock_guard<std::mutex> submit(submit_mutex_);
  const index_t chunk = (n + parts - 1) / parts;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++generation_;
    pending_ = 0;
    first_error_ = nullptr;
    for (index_t w = 0; w < static_cast<index_t>(tasks_.size()); ++w) {
      const index_t begin = std::min(n, (w + 1) * chunk); // caller takes [0, chunk)
      const index_t end = std::min(n, (w + 2) * chunk);
      tasks_[static_cast<size_t>(w)] = Task{&body, begin, end};
      if (begin < end) ++pending_;
    }
    PoolMetrics::get().queue_depth.record_max(pending_);
  }
  work_ready_.notify_all();

  // The caller runs the first chunk itself.
  std::exception_ptr caller_error;
  try {
    BodyRegionGuard guard;
    body(0, std::min(n, chunk));
  } catch (...) {
    caller_error = std::current_exception();
  }

  std::unique_lock<std::mutex> lock(mutex_);
  work_done_.wait(lock, [this] { return pending_ == 0; });
  if (caller_error) std::rethrow_exception(caller_error);
  if (first_error_) std::rethrow_exception(first_error_);
}

void ThreadPool::parallel_for_2d(
    index_t m, index_t n,
    const std::function<void(index_t, index_t, index_t, index_t)>& body) {
  if (m <= 0 || n <= 0) return;
  const index_t parts = static_cast<index_t>(size());
  if (tl_in_pool_body || parts == 1 || (m == 1 && n == 1)) {
    BodyRegionGuard guard;
    body(0, m, 0, n);
    return;
  }
  // Split the grid so tiles ~= pool size, biased toward the longer
  // dimension: pm/pn ~= m/n with pm*pn >= parts, each capped by the extent.
  index_t pm = static_cast<index_t>(std::lround(std::sqrt(
      static_cast<double>(parts) * static_cast<double>(m) /
      static_cast<double>(n))));
  pm = std::clamp<index_t>(pm, 1, std::min<index_t>(parts, m));
  index_t pn = std::min<index_t>(n, (parts + pm - 1) / pm);
  const index_t tile_m = (m + pm - 1) / pm;
  const index_t tile_n = (n + pn - 1) / pn;
  pm = (m + tile_m - 1) / tile_m; // drop tiles made empty by rounding
  pn = (n + tile_n - 1) / tile_n;

  parallel_for(pm * pn, [&](index_t t0, index_t t1) {
    for (index_t t = t0; t < t1; ++t) {
      const index_t ti = t % pm;
      const index_t tj = t / pm;
      body(ti * tile_m, std::min(m, (ti + 1) * tile_m), tj * tile_n,
           std::min(n, (tj + 1) * tile_n));
    }
  });
}

void ThreadPool::worker_loop(unsigned worker_index) {
  std::uint64_t seen_generation = 0;
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [&] {
        return shutting_down_ || generation_ != seen_generation;
      });
      if (shutting_down_) return;
      seen_generation = generation_;
      task = tasks_[worker_index];
      if (task.begin >= task.end) continue; // empty slice this round
    }
    std::exception_ptr error;
    try {
      BodyRegionGuard guard;
      (*task.body)(task.begin, task.end);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error && !first_error_) first_error_ = error;
      if (--pending_ == 0) work_done_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

} // namespace rocqr
