#include "common/half.hpp"

namespace rocqr::detail {

namespace {

std::uint32_t float_bits(float f) noexcept {
  std::uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}

float bits_float(std::uint32_t u) noexcept {
  float f;
  std::memcpy(&f, &u, sizeof(f));
  return f;
}

} // namespace

std::uint16_t float_to_half_bits(float f) noexcept {
  const std::uint32_t u = float_bits(f);
  const std::uint16_t sign = static_cast<std::uint16_t>((u >> 16) & 0x8000u);
  const std::uint32_t abs = u & 0x7fffffffu;

  if (abs >= 0x7f800000u) {
    // Inf or NaN. NaN keeps a quiet payload.
    if (abs > 0x7f800000u) return static_cast<std::uint16_t>(sign | 0x7e00u);
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }
  if (abs >= 0x477ff000u) {
    // >= 65520: rounds (nearest-even) past half-max 65504 to infinity.
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }

  const std::int32_t exp = static_cast<std::int32_t>(abs >> 23) - 127;
  if (exp >= -14) {
    // Normal half. Round the 23-bit mantissa to 10 bits, nearest-even.
    // A carry out of ++h propagates into the exponent field, which is the
    // correct encoding (including 0x7bff -> 0x7c00 = infinity).
    const std::uint32_t mant = abs & 0x007fffffu;
    std::uint16_t h = static_cast<std::uint16_t>(((exp + 15) << 10) |
                                                 static_cast<std::int32_t>(mant >> 13));
    const std::uint32_t round_bits = mant & 0x1fffu;
    if (round_bits > 0x1000u || (round_bits == 0x1000u && (h & 1u))) ++h;
    return static_cast<std::uint16_t>(sign | h);
  }
  if (exp < -25) {
    // Below half the smallest subnormal: rounds to signed zero.
    return sign;
  }
  // Subnormal half, value m * 2^-24 with m in [0, 1023]. The float value is
  // mant24 * 2^(exp-23) with the implicit bit restored, so
  // m = mant24 * 2^(exp+1), i.e. a right shift by (-exp - 1) in [14, 24].
  const std::uint32_t mant24 = (abs & 0x007fffffu) | 0x00800000u;
  const int rshift = -exp - 1;
  const std::uint32_t kept = mant24 >> rshift;
  const std::uint32_t rem = mant24 & ((1u << rshift) - 1u);
  const std::uint32_t halfway = 1u << (rshift - 1);
  std::uint16_t h = static_cast<std::uint16_t>(kept);
  if (rem > halfway || (rem == halfway && (h & 1u))) ++h; // may become normal
  return static_cast<std::uint16_t>(sign | h);
}

float half_bits_to_float(std::uint16_t h) noexcept {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1fu;
  const std::uint32_t mant = h & 0x3ffu;

  if (exp == 0x1fu) { // inf / nan
    return bits_float(sign | 0x7f800000u | (mant << 13));
  }
  if (exp == 0) {
    if (mant == 0) return bits_float(sign); // signed zero
    // Subnormal: value = mant * 2^-24. Normalize mant into an implicit
    // leading bit: after e left-shifts the value is 1.f * 2^(-14 - e).
    int e = 0;
    std::uint32_t m = mant;
    while ((m & 0x400u) == 0) {
      ++e;
      m <<= 1;
    }
    const std::uint32_t fexp = static_cast<std::uint32_t>(127 - 14 - e);
    return bits_float(sign | (fexp << 23) | ((m & 0x3ffu) << 13));
  }
  return bits_float(sign | ((exp - 15 + 127) << 23) | (mant << 13));
}

} // namespace rocqr::detail
