#include "common/telemetry.hpp"

#include <ostream>
#include <utility>

#include "common/error.hpp"

namespace rocqr::telemetry {

namespace {

int bit_width_bucket(std::int64_t sample) {
  int width = 0;
  std::uint64_t v = static_cast<std::uint64_t>(sample);
  while (v != 0) {
    ++width;
    v >>= 1;
  }
  return width;
}

/// Active span stack of the calling thread (indices into the global log).
/// Per-thread so concurrent drivers each get a coherent tree.
thread_local std::vector<int> t_span_stack;

} // namespace

void Histogram::observe(std::int64_t sample) {
  ROCQR_CHECK(sample >= 0, "Histogram::observe: negative sample");
  const int b = bit_width_bucket(sample);
  buckets_[static_cast<size_t>(b < kBuckets ? b : kBuckets - 1)].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Slot& MetricsRegistry::slot(const std::string& name,
                                             SlotKind kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = slots_.find(name);
  if (it == slots_.end()) {
    Slot s;
    s.kind = kind;
    switch (kind) {
      case SlotKind::Counter: s.counter = std::make_unique<Counter>(); break;
      case SlotKind::Gauge: s.gauge = std::make_unique<Gauge>(); break;
      case SlotKind::Histogram:
        s.histogram = std::make_unique<Histogram>();
        break;
    }
    it = slots_.emplace(name, std::move(s)).first;
  }
  ROCQR_CHECK(it->second.kind == kind,
              "MetricsRegistry: metric '" + name +
                  "' already registered with a different kind");
  return it->second;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return *slot(name, SlotKind::Counter).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return *slot(name, SlotKind::Gauge).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  return *slot(name, SlotKind::Histogram).histogram;
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricSample> out;
  out.reserve(slots_.size());
  for (const auto& [name, s] : slots_) {
    MetricSample sample;
    sample.name = name;
    switch (s.kind) {
      case SlotKind::Counter:
        sample.kind = MetricKind::Counter;
        sample.value = static_cast<double>(s.counter->value());
        sample.sum = sample.value;
        break;
      case SlotKind::Gauge:
        sample.kind = MetricKind::Gauge;
        sample.value = s.gauge->value();
        sample.sum = sample.value;
        break;
      case SlotKind::Histogram:
        sample.kind = MetricKind::Histogram;
        sample.value = static_cast<double>(s.histogram->count());
        sample.sum = static_cast<double>(s.histogram->sum());
        break;
    }
    out.push_back(std::move(sample));
  }
  return out; // std::map iterates in name order => deterministic
}

void MetricsRegistry::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  os << "{\n  \"metrics\": {";
  bool first = true;
  for (const auto& [name, s] : slots_) {
    if (!first) os << ",";
    first = false;
    os << "\n    \"" << name << "\": ";
    switch (s.kind) {
      case SlotKind::Counter: os << s.counter->value(); break;
      case SlotKind::Gauge: os << s.gauge->value(); break;
      case SlotKind::Histogram: {
        const Histogram& h = *s.histogram;
        os << "{\"count\": " << h.count() << ", \"sum\": " << h.sum()
           << ", \"buckets\": [";
        // Emit up to the last non-empty power-of-two bucket.
        int top = Histogram::kBuckets - 1;
        while (top > 0 && h.bucket(top) == 0) --top;
        for (int b = 0; b <= top; ++b) {
          if (b > 0) os << ", ";
          os << h.bucket(b);
        }
        os << "]}";
        break;
      }
    }
  }
  os << "\n  }\n}\n";
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, s] : slots_) {
    (void)name;
    switch (s.kind) {
      case SlotKind::Counter: s.counter->reset(); break;
      case SlotKind::Gauge: s.gauge->reset(); break;
      case SlotKind::Histogram: s.histogram->reset(); break;
    }
  }
}

SpanLog& SpanLog::global() {
  static SpanLog* log = new SpanLog();
  return *log;
}

std::vector<SpanRecord> SpanLog::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

bool SpanLog::empty() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.empty();
}

void SpanLog::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  // Open spans keep valid ids only while their records exist; clearing with
  // live spans would dangle, so refuse (a driver-level export always runs
  // after its spans closed).
  for (const SpanRecord& r : records_) {
    ROCQR_CHECK(!r.open, "SpanLog::clear: span '" + r.name + "' still open");
  }
  records_.clear();
}

int SpanLog::open_span(std::string name, std::uint64_t begin_cursor) {
  std::lock_guard<std::mutex> lock(mutex_);
  SpanRecord r;
  r.id = static_cast<int>(records_.size());
  r.parent = t_span_stack.empty() ? -1 : t_span_stack.back();
  r.depth = static_cast<int>(t_span_stack.size());
  r.name = std::move(name);
  r.begin_cursor = begin_cursor;
  r.end_cursor = begin_cursor;
  records_.push_back(std::move(r));
  t_span_stack.push_back(records_.back().id);
  return records_.back().id;
}

void SpanLog::close_span(int id, std::uint64_t end_cursor) {
  std::lock_guard<std::mutex> lock(mutex_);
  SpanRecord& r = records_[static_cast<size_t>(id)];
  r.end_cursor = end_cursor;
  r.open = false;
  // RAII scopes close in LIFO order per thread.
  if (!t_span_stack.empty() && t_span_stack.back() == id) {
    t_span_stack.pop_back();
  }
}

Span::Span(std::string name, std::function<std::uint64_t()> cursor,
           SpanLog& log)
    : log_(log), cursor_(std::move(cursor)) {
  id_ = log_.open_span(std::move(name), cursor_ ? cursor_() : 0);
}

Span::~Span() { log_.close_span(id_, cursor_ ? cursor_() : 0); }

} // namespace rocqr::telemetry
