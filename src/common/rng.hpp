// Deterministic, fast pseudo-random number generation (xoshiro256++).
//
// Tests and workload generators need reproducible streams that are cheap to
// fork per-thread; std::mt19937_64 seeding subtleties make cross-platform
// reproducibility awkward, so we carry a small self-contained generator.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace rocqr {

/// xoshiro256++ 1.0 by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  /// Seeds all 256 bits of state from a 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform 64-bit word.
  std::uint64_t next_u64() noexcept;

  /// Uniform in [0, 1).
  double next_double() noexcept;

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Standard normal via Box-Muller (no cached second value: keeps the
  /// generator stateless beyond its word stream, which simplifies forking).
  double normal() noexcept;

  /// Uniform integer in [0, n), n > 0.
  index_t below(index_t n) noexcept;

  /// Returns an independent generator ("jumped" stream) for parallel fills.
  Rng fork() noexcept;

 private:
  std::uint64_t s_[4];
};

} // namespace rocqr
