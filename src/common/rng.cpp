#include "common/rng.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace rocqr {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() noexcept {
  // 53 top bits scaled into [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

double Rng::normal() noexcept {
  // Box-Muller; guard against log(0).
  double u1 = next_double();
  while (u1 <= 0.0) u1 = next_double();
  const double u2 = next_double();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

index_t Rng::below(index_t n) noexcept {
  // Modulo bias is negligible for n << 2^64 (all our uses).
  return static_cast<index_t>(next_u64() % static_cast<std::uint64_t>(n));
}

Rng Rng::fork() noexcept {
  Rng child(next_u64());
  return child;
}

} // namespace rocqr
