// Wall-clock timer for host-side (real) measurements.
//
// Note: the *simulated* clock lives in src/sim (discrete-event engine).
// This timer measures actual host execution, used by the google-benchmark
// microbenchmarks and by tests that bound real runtimes.
#pragma once

#include <chrono>

namespace rocqr {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

} // namespace rocqr
