// Minimal work-sharing thread pool for host BLAS kernels.
//
// The pool exposes a single collective operation, parallel_for, which is all
// the blocked kernels need. Work is divided into contiguous ranges (one per
// worker) rather than a task queue: for dense kernels, static partitioning
// has lower overhead and better locality than work stealing.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"

namespace rocqr {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Runs body(begin, end) over a partition of [0, n) across all workers
  /// plus the calling thread. Blocks until every range completes.
  /// Exceptions from body are rethrown (first one wins) on the caller.
  void parallel_for(index_t n,
                    const std::function<void(index_t, index_t)>& body);

  /// Process-wide default pool (lazily constructed, never destroyed before
  /// exit). Kernels use this unless handed an explicit pool.
  static ThreadPool& global();

 private:
  struct Task {
    const std::function<void(index_t, index_t)>* body = nullptr;
    index_t begin = 0;
    index_t end = 0;
  };

  void worker_loop(unsigned worker_index);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  std::vector<Task> tasks_;     // one slot per worker
  std::uint64_t generation_ = 0; // bumped per parallel_for round
  unsigned pending_ = 0;
  std::exception_ptr first_error_;
  bool shutting_down_ = false;
};

} // namespace rocqr
