// Minimal work-sharing thread pool for host BLAS kernels.
//
// The pool exposes two collective operations, parallel_for and
// parallel_for_2d, which is all the blocked kernels need. Work is divided
// into contiguous ranges (one per worker) rather than a task queue: for
// dense kernels, static partitioning has lower overhead and better locality
// than work stealing.
//
// Reentrancy contract (v2):
//  - Nested calls (parallel_for issued from inside a parallel_for body, on
//    any pool) detect the situation through a thread-local flag and run the
//    body serially on the calling thread. Kernels may therefore call each
//    other freely — e.g. gemm from inside a caller's parallel_for — without
//    deadlocking or corrupting pool state.
//  - Concurrent top-level calls from distinct host threads serialize on a
//    submission mutex: one round runs at a time, later callers block until
//    the pool is free. Dense kernels want all workers anyway, so overlapping
//    rounds would only fight for cores.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"

namespace rocqr {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Runs body(begin, end) over a partition of [0, n) across all workers
  /// plus the calling thread. Blocks until every range completes.
  /// Exceptions from body are rethrown (first one wins) on the caller.
  /// Safe to call from inside another parallel_for body (runs serially) and
  /// from multiple host threads at once (rounds serialize).
  void parallel_for(index_t n,
                    const std::function<void(index_t, index_t)>& body);

  /// Runs body(i0, i1, j0, j1) over a tile partition of [0, m) x [0, n).
  /// The grid is chosen so the tile count roughly matches the pool size,
  /// with the split biased toward the longer dimension; kernels that are
  /// short in one dimension (tall-skinny GEMM panels) still get full
  /// parallelism from the other. Same reentrancy rules as parallel_for.
  void parallel_for_2d(
      index_t m, index_t n,
      const std::function<void(index_t, index_t, index_t, index_t)>& body);

  /// True while the calling thread is executing inside a parallel_for /
  /// parallel_for_2d body (on any pool). Kernels can use this to skip
  /// parallel setup they know will degrade to serial.
  static bool in_parallel_region();

  /// Process-wide default pool (lazily constructed, never destroyed before
  /// exit). Kernels use this unless handed an explicit pool.
  static ThreadPool& global();

 private:
  struct Task {
    const std::function<void(index_t, index_t)>* body = nullptr;
    index_t begin = 0;
    index_t end = 0;
  };

  void worker_loop(unsigned worker_index);

  std::vector<std::thread> workers_;
  /// Serializes whole parallel_for rounds issued by different host threads.
  /// Held for the full round, so tasks_/pending_/generation_ are only ever
  /// touched by one submitting thread plus the workers.
  std::mutex submit_mutex_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  std::vector<Task> tasks_;     // one slot per worker
  std::uint64_t generation_ = 0; // bumped per parallel_for round
  unsigned pending_ = 0;
  std::exception_ptr first_error_;
  bool shutting_down_ = false;
};

} // namespace rocqr
