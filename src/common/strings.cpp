#include "common/strings.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace rocqr {

std::string format_bytes(bytes_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (std::fabs(v) >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  char buf[64];
  if (u == 0) {
    std::snprintf(buf, sizeof buf, "%lld B", static_cast<long long>(bytes));
  } else {
    std::snprintf(buf, sizeof buf, "%.2f %s", v, units[u]);
  }
  return buf;
}

std::string format_seconds(double seconds) {
  char buf[64];
  const double abs = std::fabs(seconds);
  if (abs < 1e-6) {
    std::snprintf(buf, sizeof buf, "%.1f ns", seconds * 1e9);
  } else if (abs < 1e-3) {
    std::snprintf(buf, sizeof buf, "%.1f us", seconds * 1e6);
  } else if (abs < 1.0) {
    std::snprintf(buf, sizeof buf, "%.1f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f s", seconds);
  }
  return buf;
}

std::string format_flops_rate(double flops_per_second) {
  char buf[64];
  const double tf = flops_per_second / 1e12;
  if (tf >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.1f TFLOP/s", tf);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f GFLOP/s", flops_per_second / 1e9);
  }
  return buf;
}

std::string format_shape(index_t rows, index_t cols) {
  std::ostringstream os;
  os << rows << "x" << cols;
  return os.str();
}

std::string format_fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

std::string pad_left(const std::string& s, int width) {
  const int pad = width - static_cast<int>(s.size());
  if (pad <= 0) return s;
  return std::string(static_cast<size_t>(pad), ' ') + s;
}

std::string pad_right(const std::string& s, int width) {
  const int pad = width - static_cast<int>(s.size());
  if (pad <= 0) return s;
  return s + std::string(static_cast<size_t>(pad), ' ');
}

} // namespace rocqr
