// Software IEEE-754 binary16 ("half") emulating TensorCore input precision.
//
// TensorCore GEMMs consume fp16 inputs and accumulate in fp32. This type
// reproduces the *input rounding* exactly: float -> half conversion uses
// round-to-nearest-even with correct subnormal and overflow handling, so the
// numerical behaviour of CGS-on-TensorCore (Zhang et al., HPDC'20) is
// observable on a CPU-only host.
//
// Arithmetic on half promotes to float, matching how TensorCore-era code
// treats fp16 as a storage/interchange format rather than a compute format.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

namespace rocqr {

namespace detail {

/// Convert a float to IEEE binary16 bits, round-to-nearest-even.
std::uint16_t float_to_half_bits(float f) noexcept;

/// Convert IEEE binary16 bits to float (exact; every half is a float).
float half_bits_to_float(std::uint16_t h) noexcept;

} // namespace detail

class half {
 public:
  half() = default;

  /// Conversion from float rounds to nearest-even, like cvt.rn.f16.f32.
  explicit half(float f) noexcept : bits_(detail::float_to_half_bits(f)) {}
  explicit half(double d) noexcept : half(static_cast<float>(d)) {}
  explicit half(int i) noexcept : half(static_cast<float>(i)) {}

  /// Implicit widening to float is safe (exact) and keeps call sites terse.
  operator float() const noexcept { return detail::half_bits_to_float(bits_); }

  static half from_bits(std::uint16_t b) noexcept {
    half h;
    h.bits_ = b;
    return h;
  }
  std::uint16_t bits() const noexcept { return bits_; }

  half& operator+=(half rhs) noexcept {
    *this = half(float(*this) + float(rhs));
    return *this;
  }
  half& operator-=(half rhs) noexcept {
    *this = half(float(*this) - float(rhs));
    return *this;
  }
  half& operator*=(half rhs) noexcept {
    *this = half(float(*this) * float(rhs));
    return *this;
  }
  half& operator/=(half rhs) noexcept {
    *this = half(float(*this) / float(rhs));
    return *this;
  }
  half operator-() const noexcept { return from_bits(bits_ ^ 0x8000u); }

 private:
  std::uint16_t bits_ = 0;
};

static_assert(sizeof(half) == 2, "half must be two bytes");

inline half operator+(half a, half b) noexcept { return half(float(a) + float(b)); }
inline half operator-(half a, half b) noexcept { return half(float(a) - float(b)); }
inline half operator*(half a, half b) noexcept { return half(float(a) * float(b)); }
inline half operator/(half a, half b) noexcept { return half(float(a) / float(b)); }

inline bool operator==(half a, half b) noexcept { return float(a) == float(b); }
inline bool operator!=(half a, half b) noexcept { return float(a) != float(b); }
inline bool operator<(half a, half b) noexcept { return float(a) < float(b); }
inline bool operator>(half a, half b) noexcept { return float(a) > float(b); }
inline bool operator<=(half a, half b) noexcept { return float(a) <= float(b); }
inline bool operator>=(half a, half b) noexcept { return float(a) >= float(b); }

inline bool isnan(half h) noexcept {
  return (h.bits() & 0x7c00u) == 0x7c00u && (h.bits() & 0x03ffu) != 0;
}
inline bool isinf(half h) noexcept { return (h.bits() & 0x7fffu) == 0x7c00u; }
inline bool isfinite(half h) noexcept { return (h.bits() & 0x7c00u) != 0x7c00u; }

} // namespace rocqr

namespace std {

template <>
class numeric_limits<rocqr::half> {
 public:
  static constexpr bool is_specialized = true;
  static constexpr bool is_signed = true;
  static constexpr bool is_integer = false;
  static constexpr bool is_exact = false;
  static constexpr bool has_infinity = true;
  static constexpr bool has_quiet_NaN = true;
  static constexpr int digits = 11;        // implicit bit + 10 mantissa bits
  static constexpr int max_exponent = 16;  // 2^15 < max < 2^16
  static constexpr int min_exponent = -13; // min normal 2^-14

  static rocqr::half min() noexcept { return rocqr::half::from_bits(0x0400); }
  static rocqr::half max() noexcept { return rocqr::half::from_bits(0x7bff); }
  static rocqr::half lowest() noexcept { return rocqr::half::from_bits(0xfbff); }
  static rocqr::half epsilon() noexcept { return rocqr::half::from_bits(0x1400); }
  static rocqr::half denorm_min() noexcept { return rocqr::half::from_bits(0x0001); }
  static rocqr::half infinity() noexcept { return rocqr::half::from_bits(0x7c00); }
  static rocqr::half quiet_NaN() noexcept { return rocqr::half::from_bits(0x7e00); }
};

} // namespace std
