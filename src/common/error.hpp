// Error handling: exception hierarchy and checked-precondition macros.
//
// Library code throws rocqr::Error subclasses; it never calls abort() so
// that failure-injection tests can observe every error path.
#pragma once

#include <stdexcept>
#include <string>

namespace rocqr {

/// Base class for all rocqr errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what_arg) : std::runtime_error(what_arg) {}
};

/// A caller violated an API precondition (bad shape, negative size, ...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what_arg) : Error(what_arg) {}
};

/// Simulated device memory exhausted.
class DeviceOutOfMemory : public Error {
 public:
  explicit DeviceOutOfMemory(const std::string& what_arg) : Error(what_arg) {}
};

/// The device suffered a permanent, unrecoverable failure (an injected
/// `fatal` fault, sim/faults.hpp): the device is dead and every further
/// operation on it throws this. Deliberately distinct from
/// DeviceOutOfMemory and TransferError so no retry/degradation path
/// mistakes a hard loss for a recoverable fault — the serve layer migrates
/// the victim's jobs to surviving devices instead.
class DeviceLost : public Error {
 public:
  explicit DeviceLost(const std::string& what_arg) : Error(what_arg) {}
};

/// A transfer (H2D/D2H) failed transiently — retryable: re-enqueueing the
/// same copy may succeed. Thrown by injected faults (sim/faults.hpp); the
/// OOC engines retry these with bounded exponential backoff.
class TransferError : public Error {
 public:
  explicit TransferError(const std::string& what_arg) : Error(what_arg) {}
};

/// A retryable operation kept failing until its attempt cap was reached.
class FaultBudgetExhausted : public Error {
 public:
  explicit FaultBudgetExhausted(const std::string& what_arg)
      : Error(what_arg) {}
};

/// A numerical invariant was violated and could not be repaired (e.g. ABFT
/// checksum mismatch that persisted across the recompute budget).
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what_arg) : Error(what_arg) {}
};

/// Use of a destroyed/freed simulated resource (buffer, stream, event).
class ResourceError : public Error {
 public:
  explicit ResourceError(const std::string& what_arg) : Error(what_arg) {}
};

/// An operation required real element data but was given a phantom buffer
/// (or mixed phantom and real operands inconsistently).
class PhantomDataError : public Error {
 public:
  explicit PhantomDataError(const std::string& what_arg) : Error(what_arg) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const char* file,
                                      int line, const std::string& message);
} // namespace detail

} // namespace rocqr

/// Precondition check that is always on (not assert): throws InvalidArgument.
#define ROCQR_CHECK(expr, message)                                        \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::rocqr::detail::throw_check_failure(#expr, __FILE__, __LINE__,     \
                                           (message));                    \
    }                                                                     \
  } while (false)
