// Unified telemetry: a process-wide registry of named metrics and a
// hierarchical span log.
//
// The paper's evidence is timeline- and byte-count-shaped (Figs 7-15,
// Tables 1-4); communication-optimal QR work judges algorithms by words
// moved, engine occupancy, and overlap. This header is the one place those
// quantities are collected:
//
//  - MetricsRegistry: named counters / gauges / histograms with atomic
//    updates and a deterministic JSON snapshot. Instrumented producers
//    include the trace (bytes per direction, flops by GEMM shape class),
//    the host GEMM pack buffers, the thread pool, and the OOC engines'
//    slab-buffer pools.
//  - Span / SpanLog: RAII phase markers threaded through the OOC engines
//    and the QR drivers. A span records a *cursor window* — a pair of
//    monotone positions obtained from a caller-supplied source (the
//    simulator uses its trace event count) — so a later exporter can
//    attribute everything that happened inside the span without this
//    layer depending on the simulator.
//
// Layering: common sits below sim, so nothing here includes sim headers;
// src/sim/trace_export.hpp binds spans to the device trace and renders the
// Chrome-trace JSON.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace rocqr::telemetry {

/// Monotonically increasing integer metric (bytes moved, events, cache
/// misses). Safe to bump from any thread.
class Counter {
 public:
  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void increment() { add(1); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-written floating-point metric (queue depth, buffer size). `set`
/// overwrites; `record_max` keeps the high-water mark.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void record_max(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Power-of-two bucketed distribution of non-negative integer samples
/// (pack-buffer sizes, parallel_for widths). Bucket i counts samples whose
/// bit width is i, i.e. values in [2^(i-1), 2^i).
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void observe(std::int64_t sample);
  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::int64_t bucket(int i) const {
    return buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }
  void reset();

 private:
  std::atomic<std::int64_t> buckets_[kBuckets] = {};
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
};

enum class MetricKind { Counter, Gauge, Histogram };

/// One metric in a snapshot. For histograms, `value` is the sample count and
/// `sum` the sample total (bucket detail stays in the live object).
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::Counter;
  double value = 0.0;
  double sum = 0.0;
};

/// Process-wide registry of named metrics. Lookup interns the metric on
/// first use and returns a stable reference; hot paths should cache it.
/// Snapshots iterate in name order, so exports are deterministic.
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  std::vector<MetricSample> snapshot() const;

  /// JSON object {"metrics": {name: value | {histogram}}, ...}, names sorted.
  void write_json(std::ostream& os) const;

  /// Zeroes every registered metric (keeps registrations). Test/CLI aid.
  void reset();

 private:
  enum class SlotKind { Counter, Gauge, Histogram };
  struct Slot {
    SlotKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Slot& slot(const std::string& name, SlotKind kind);

  mutable std::mutex mutex_;
  std::map<std::string, Slot> slots_;
};

/// One closed (or still open) phase scope. Cursor positions come from the
/// span's cursor source; for device spans they are trace event indices, so
/// [begin_cursor, end_cursor) is the window of trace events attributable to
/// this phase.
struct SpanRecord {
  int id = 0;
  int parent = -1; ///< index into the log, -1 for roots
  int depth = 0;
  std::string name;
  std::uint64_t begin_cursor = 0;
  std::uint64_t end_cursor = 0;
  bool open = true;
};

/// Append-only log of spans. Nesting is tracked per thread: a Span opened
/// while another is live on the same thread becomes its child.
class SpanLog {
 public:
  static SpanLog& global();

  /// Copy of all records (thread-safe; open spans have open == true).
  std::vector<SpanRecord> snapshot() const;
  bool empty() const;
  void clear();

 private:
  friend class Span;
  int open_span(std::string name, std::uint64_t begin_cursor);
  void close_span(int id, std::uint64_t end_cursor);

  mutable std::mutex mutex_;
  std::vector<SpanRecord> records_;
};

/// RAII phase marker. The cursor source is sampled once at construction and
/// once at destruction; any monotone counter works (the simulator passes its
/// trace event count, see sim::TraceSpan).
class Span {
 public:
  Span(std::string name, std::function<std::uint64_t()> cursor,
       SpanLog& log = SpanLog::global());
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  int id() const { return id_; }

 private:
  SpanLog& log_;
  std::function<std::uint64_t()> cursor_;
  int id_;
};

} // namespace rocqr::telemetry
