#include "common/error.hpp"

#include <sstream>

namespace rocqr::detail {

void throw_check_failure(const char* expr, const char* file, int line,
                         const std::string& message) {
  std::ostringstream os;
  os << "ROCQR_CHECK failed: (" << expr << ") at " << file << ":" << line
     << " — " << message;
  throw InvalidArgument(os.str());
}

} // namespace rocqr::detail
