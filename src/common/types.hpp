// Fundamental scalar and index types shared across the rocqr libraries.
#pragma once

#include <cstddef>
#include <cstdint>

namespace rocqr {

/// Signed index type used for all matrix dimensions and loop indices.
/// Signed (rather than size_t) per C++ Core Guidelines ES.100/ES.102: mixed
/// signed/unsigned arithmetic in blocked loops is a classic source of bugs.
using index_t = std::int64_t;

/// Byte counts for data-movement accounting. Paper-scale runs move hundreds
/// of gigabytes, so 64-bit is required.
using bytes_t = std::int64_t;

/// Floating-point operation counts (up to ~2.3e18 for 131072^3 GEMMs).
using flops_t = std::int64_t;

/// Simulated time in seconds. All discrete-event engine timestamps use this.
using sim_time_t = double;

} // namespace rocqr
