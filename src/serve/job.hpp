// Job and report types of the multi-job QR service (docs/SERVING.md).
//
// A JobSpec describes one factorization request the way a client of a
// QR-as-a-service endpoint would: shape, precision, algorithm, priority and
// an optional deadline. The serve::Scheduler admits jobs against a device
// fleet via phantom-mode admission control and surfaces the outcome as one
// JobReport per job plus a fleet-wide makespan view.
#pragma once

#include <string>
#include <vector>

#include "blas/gemm.hpp"
#include "common/types.hpp"
#include "qr/options.hpp"
#include "sim/device.hpp"

namespace rocqr::serve {

/// One QR factorization request.
struct JobSpec {
  std::string name;
  index_t m = 0;
  index_t n = 0;
  /// OOC driver: "recursive", "blocking", "left", "tiled", or "tsqr"
  /// (qr::Algorithm names). A "tsqr" job is gang-scheduled — it acquires
  /// every device in the fleet atomically and runs the fleet-wide
  /// out-of-core TSQR. "tiled" jobs can be colocated on one device as a
  /// single task graph when ServeConfig::max_colocated_jobs > 1; same-shape
  /// "blocking" jobs can additionally be *fused* into block-diagonal
  /// batched operations when ServeConfig::max_fused_jobs > 1
  /// (docs/SERVING.md "Batched small-QR coalescing").
  std::string algorithm = "recursive";
  blas::GemmPrecision precision = blas::GemmPrecision::FP16_FP32;
  /// Panel width; 0 = autotune via phantom dry runs at admission time.
  index_t blocksize = 0;
  /// Higher runs first; equal priorities dispatch earliest-deadline-first,
  /// then in submission order.
  int priority = 0;
  /// Simulated-seconds budget for the job's device time; 0 = none. A job
  /// whose predicted runtime already misses the deadline is rejected.
  double deadline_seconds = 0;
  /// Batch arrival model: the job only becomes ready for dispatch once the
  /// fleet has completed this many panel units (0 = ready immediately).
  /// Lets a single batch exercise jobs that "arrive" mid-run.
  index_t arrival_after_units = 0;
  /// Real-mode payload: A (m x n, becomes Q) and R (n x n). Leave null for
  /// phantom fleets; required (and shape-checked) on Real-mode fleets.
  sim::HostMutRef a;
  sim::HostMutRef r;
  /// Base driver options. The scheduler overrides blocksize, precision and
  /// the checkpointing fields (it owns the per-job checkpoint sink).
  qr::QrOptions options;
};

enum class JobState {
  Rejected,  ///< failed admission control; never dispatched
  Queued,    ///< admitted, waiting for a device
  Running,   ///< currently on a device
  Preempted, ///< yielded at a checkpoint boundary; waiting to resume
  Completed, ///< factorization finished
  Failed,    ///< every retry exhausted
  Shed,      ///< load-shed after a fleet shrink: the re-quote against the
             ///< surviving devices can no longer meet the job's deadline.
             ///< Not a failure — the job itself never went wrong.
};

const char* to_string(JobState s);

/// Outcome of admission control for one submitted job.
struct AdmissionDecision {
  int job_id = -1;
  bool admitted = false;
  std::string reason; ///< non-empty iff rejected
  /// Chosen panel width (the job's own, or the autotuned winner).
  index_t blocksize = 0;
  /// Phantom dry-run prediction of the job as the scheduler will run it
  /// (same checkpoint cadence, dedicated device at rest).
  double predicted_seconds = 0;
  bytes_t predicted_peak_bytes = 0;
};

/// Per-job slice of the fleet report.
struct JobReport {
  int id = -1;
  std::string name;
  JobState state = JobState::Queued;
  int priority = 0;
  std::string algorithm;
  index_t m = 0;
  index_t n = 0;
  index_t blocksize = 0;
  double predicted_seconds = 0;
  bytes_t predicted_peak_bytes = 0;
  /// Rejection reason or the final error of a failed job.
  std::string failure;
  int attempts = 0;    ///< dispatches (1 + preemption resumes + retries)
  int preemptions = 0; ///< checkpoint-boundary yields to higher priority
  int retries = 0;     ///< fault-triggered restarts from the last checkpoint
  int migrations = 0;  ///< re-admissions onto a survivor after device loss
  int last_device = -1;
  /// Simulated time spent ready-but-waiting, summed over every queueing
  /// episode: each dispatch charges the gap between the instant the job
  /// became ready (arrival release, preemption park, or retry requeue) and
  /// the dispatching device's availability bound. Deterministic — two runs
  /// of the same batch report identical waits.
  double queue_wait_seconds = 0;
  /// deadline_seconds == 0, or the job completed within it (device time).
  bool deadline_met = true;
  /// Device-time statistics summed over the job's attempt trace windows:
  /// total_seconds is the simulated device time consumed (including work a
  /// preemption or retry discarded), not a single contiguous span.
  qr::QrStats stats;
};

/// Batch outcome: every job plus the fleet-wide aggregate.
struct FleetReport {
  int devices = 0;
  /// Whole-run trace statistics per device, in device order.
  std::vector<qr::QrStats> per_device;
  /// qr::combine_device_stats over per_device: sums plus the global span.
  qr::QrStats fleet;
  /// Fleet makespan == fleet.total_seconds (the global trace span).
  double makespan_seconds = 0;
  std::int64_t jobs_admitted = 0;
  std::int64_t jobs_rejected = 0;
  std::int64_t jobs_completed = 0;
  std::int64_t jobs_failed = 0;
  std::int64_t jobs_preempted = 0; ///< preemption events (not distinct jobs)
  std::int64_t job_retries = 0;
  std::int64_t units_completed = 0; ///< fleet-wide panel units
  /// Fleet-health outcome (docs/SERVING.md "Fleet failover & load shedding"):
  /// devices declared Dead during the run, checkpoint-driven job migrations
  /// onto survivors, and deadline jobs shed because the shrunken fleet's
  /// re-quote could no longer meet them.
  int devices_lost = 0;
  std::int64_t jobs_migrated = 0; ///< migration events (not distinct jobs)
  std::int64_t jobs_shed = 0;
  /// Final health of each device, in device order: "healthy", "suspect"
  /// or "dead".
  std::vector<std::string> device_health;
  /// Exact simulated queue wait of every dispatch (one entry per attempt,
  /// in dispatch order). The `serve.queue_wait_us` telemetry histogram
  /// quantizes the same waits into power-of-two buckets for live export;
  /// tail percentiles computed there are off by up to 2x, so reports use
  /// this exact record instead (docs/TELEMETRY.md).
  std::vector<double> queue_waits;
  /// Nearest-rank percentiles over `queue_waits` (0 when no dispatches).
  double queue_wait_p50 = 0;
  double queue_wait_p95 = 0;
  double queue_wait_p99 = 0;
  std::vector<JobReport> jobs;      ///< in submission order
};

} // namespace rocqr::serve
