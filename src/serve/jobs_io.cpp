#include "serve/jobs_io.hpp"

#include <cctype>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/error.hpp"

namespace rocqr::serve {

namespace {

/// Cursor over the batch text. The grammar is tiny (an array of flat
/// objects with string/number/boolean values), so a hand-rolled scanner
/// keeps the service free of a JSON dependency.
struct Cursor {
  const std::string& text;
  size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  bool at_end() {
    skip_ws();
    return pos >= text.size();
  }

  char peek() {
    skip_ws();
    if (pos >= text.size()) {
      throw InvalidArgument("jobs JSON: unexpected end of input");
    }
    return text[pos];
  }

  void expect(char c) {
    if (peek() != c) {
      throw InvalidArgument(std::string("jobs JSON: expected '") + c +
                            "' at offset " + std::to_string(pos) + ", got '" +
                            text[pos] + "'");
    }
    ++pos;
  }

  bool consume_if(char c) {
    if (!at_end() && peek() == c) {
      ++pos;
      return true;
    }
    return false;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos < text.size() && text[pos] != '"') {
      char c = text[pos++];
      if (c == '\\') {
        if (pos >= text.size()) break;
        char esc = text[pos++];
        switch (esc) {
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        default:
          throw InvalidArgument(
              std::string("jobs JSON: unsupported escape \\") + esc);
        }
      } else {
        out.push_back(c);
      }
    }
    if (pos >= text.size()) {
      throw InvalidArgument("jobs JSON: unterminated string");
    }
    ++pos; // closing quote
    return out;
  }

  double parse_number() {
    skip_ws();
    size_t start = pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '-' || text[pos] == '+' || text[pos] == '.' ||
            text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
    }
    if (pos == start) {
      throw InvalidArgument("jobs JSON: expected a number at offset " +
                            std::to_string(start));
    }
    const std::string span = text.substr(start, pos - start);
    try {
      // stod parses a prefix; the whole consumed span must be the number,
      // or junk like "1.2.3" / "1e2e3" would silently pass as 1.2 / 100.
      size_t parsed = 0;
      const double v = std::stod(span, &parsed);
      if (parsed != span.size()) {
        throw std::invalid_argument("trailing characters");
      }
      return v;
    } catch (const std::exception&) {
      throw InvalidArgument("jobs JSON: malformed number '" + span + "'");
    }
  }

  bool parse_bool() {
    skip_ws();
    if (text.compare(pos, 4, "true") == 0) {
      pos += 4;
      return true;
    }
    if (text.compare(pos, 5, "false") == 0) {
      pos += 5;
      return false;
    }
    throw InvalidArgument("jobs JSON: expected true/false at offset " +
                          std::to_string(pos));
  }
};

index_t to_index(double v, const std::string& key) {
  // Range-check before the cast: float-to-integer conversion of an
  // out-of-range value (say 1e30) is undefined behavior, so the cast may
  // only run once v is known to fit. double(int64 max) rounds *up* to
  // 2^63, itself out of range, hence the exclusive comparison.
  const double max_index =
      static_cast<double>(std::numeric_limits<index_t>::max());
  if (!(v >= 0) || v >= max_index ||
      v != static_cast<double>(static_cast<index_t>(v))) {
    throw InvalidArgument("jobs JSON: \"" + key +
                          "\" must be a non-negative integer");
  }
  return static_cast<index_t>(v);
}

JobSpec parse_job_object(Cursor& cur, size_t job_index) {
  JobSpec job;
  bool have_m = false;
  bool have_n = false;
  bool have_deadline = false;
  cur.expect('{');
  if (!cur.consume_if('}')) {
    do {
      const std::string key = cur.parse_string();
      cur.expect(':');
      if (key == "name") {
        job.name = cur.parse_string();
      } else if (key == "algorithm" || key == "algo") {
        job.algorithm = cur.parse_string();
      } else if (key == "precision") {
        const std::string p = cur.parse_string();
        if (p == "fp16") {
          job.precision = blas::GemmPrecision::FP16_FP32;
        } else if (p == "fp32") {
          job.precision = blas::GemmPrecision::FP32;
        } else {
          throw InvalidArgument("jobs JSON: unknown precision \"" + p +
                                "\" (expected fp16 or fp32)");
        }
      } else if (key == "m") {
        job.m = to_index(cur.parse_number(), key);
        have_m = true;
      } else if (key == "n") {
        job.n = to_index(cur.parse_number(), key);
        have_n = true;
      } else if (key == "blocksize") {
        job.blocksize = to_index(cur.parse_number(), key);
      } else if (key == "priority") {
        job.priority = static_cast<int>(cur.parse_number());
      } else if (key == "deadline") {
        job.deadline_seconds = cur.parse_number();
        have_deadline = true;
      } else if (key == "arrival_after_units") {
        job.arrival_after_units = to_index(cur.parse_number(), key);
      } else {
        throw InvalidArgument("jobs JSON: unknown key \"" + key + "\"");
      }
    } while (cur.consume_if(','));
    cur.expect('}');
  }
  if (!have_m || !have_n) {
    throw InvalidArgument("jobs JSON: job " + std::to_string(job_index) +
                          " is missing required key \"" +
                          std::string(have_m ? "n" : "m") + "\"");
  }
  if (job.name.empty()) job.name = "job" + std::to_string(job_index);
  // Shape and deadline sanity at parse time, naming the offender: a zero
  // dimension or a non-positive explicit deadline would otherwise surface
  // much later as an opaque admission rejection (or worse, be admitted —
  // deadline 0 means "none" internally).
  if (job.m <= 0 || job.n <= 0) {
    throw InvalidArgument("jobs JSON: job \"" + job.name +
                          "\" has non-positive \"" +
                          (job.m <= 0 ? "m" : "n") + "\" (m and n must be >= 1)");
  }
  if (have_deadline && job.deadline_seconds <= 0) {
    throw InvalidArgument(
        "jobs JSON: job \"" + job.name +
        "\" has a non-positive \"deadline\" (omit the key for no deadline)");
  }
  return job;
}

std::string escaped(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
    case '"': out += "\\\""; break;
    case '\\': out += "\\\\"; break;
    case '\n': out += "\\n"; break;
    case '\t': out += "\\t"; break;
    default: out.push_back(c);
    }
  }
  return out;
}

/// Shortest-round-trip double formatting. Streaming a double at the
/// default ostream precision keeps only 6 significant digits — enough to
/// corrupt every reloaded metric in the 7th digit — so every double in the
/// report goes through here with max_digits10 (17) significant digits,
/// which round-trips bit-exactly through strtod.
std::string json_double(double v) {
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
  return os.str();
}

void write_stats(std::ostream& os, const qr::QrStats& s,
                 const std::string& indent) {
  os << "{\n";
  os << indent << "  \"total_seconds\": " << json_double(s.total_seconds)
     << ",\n";
  os << indent << "  \"h2d_seconds\": " << json_double(s.h2d_seconds)
     << ",\n";
  os << indent << "  \"d2h_seconds\": " << json_double(s.d2h_seconds)
     << ",\n";
  os << indent << "  \"compute_seconds\": " << json_double(s.compute_seconds)
     << ",\n";
  os << indent << "  \"bytes_h2d\": " << s.bytes_h2d << ",\n";
  os << indent << "  \"bytes_d2h\": " << s.bytes_d2h << ",\n";
  os << indent << "  \"flops\": " << s.flops << ",\n";
  os << indent << "  \"peak_device_bytes\": " << s.peak_device_bytes << ",\n";
  os << indent << "  \"panels\": " << s.panels << ",\n";
  os << indent << "  \"events\": " << s.events << "\n";
  os << indent << "}";
}

} // namespace

std::vector<JobSpec> parse_jobs_json(const std::string& text) {
  Cursor cur{text};
  std::vector<JobSpec> jobs;
  bool have_jobs = false;

  auto parse_array = [&] {
    cur.expect('[');
    if (!cur.consume_if(']')) {
      do {
        jobs.push_back(parse_job_object(cur, jobs.size()));
      } while (cur.consume_if(','));
      cur.expect(']');
    }
    have_jobs = true;
  };

  if (cur.peek() == '[') {
    // v1: a bare job array, implicitly schema_version 1.
    parse_array();
  } else {
    // v2+: {"schema_version": N, "jobs": [...]}. Reject majors newer than
    // this build understands — silently dropping their keys would corrupt
    // the batch.
    cur.expect('{');
    if (!cur.consume_if('}')) {
      do {
        const std::string key = cur.parse_string();
        cur.expect(':');
        if (key == "schema_version") {
          const double v = cur.parse_number();
          const int major = static_cast<int>(v);
          if (major < 1 || major > kJobsSchemaVersion) {
            throw InvalidArgument(
                "jobs JSON: unsupported schema_version " +
                std::to_string(major) + " (this build reads versions 1.." +
                std::to_string(kJobsSchemaVersion) + ")");
          }
        } else if (key == "jobs") {
          parse_array();
        } else {
          throw InvalidArgument("jobs JSON: unknown top-level key \"" + key +
                                "\"");
        }
      } while (cur.consume_if(','));
      cur.expect('}');
    }
    if (!have_jobs) {
      throw InvalidArgument("jobs JSON: envelope is missing \"jobs\"");
    }
  }
  if (!cur.at_end()) {
    throw InvalidArgument("jobs JSON: trailing content after the batch");
  }
  // Duplicate job ids would make the report ambiguous (per-job rows are
  // keyed by name downstream); reject the batch naming the duplicate.
  for (size_t i = 0; i < jobs.size(); ++i) {
    for (size_t j = i + 1; j < jobs.size(); ++j) {
      if (jobs[i].name == jobs[j].name) {
        throw InvalidArgument("jobs JSON: duplicate job name \"" +
                              jobs[i].name + "\" (jobs " + std::to_string(i) +
                              " and " + std::to_string(j) + ")");
      }
    }
  }
  return jobs;
}

void write_fleet_report_json(std::ostream& os, const FleetReport& rep) {
  os << "{\n";
  os << "  \"schema_version\": " << kJobsSchemaVersion << ",\n";
  os << "  \"devices\": " << rep.devices << ",\n";
  os << "  \"makespan_seconds\": " << json_double(rep.makespan_seconds)
     << ",\n";
  os << "  \"jobs_admitted\": " << rep.jobs_admitted << ",\n";
  os << "  \"jobs_rejected\": " << rep.jobs_rejected << ",\n";
  os << "  \"jobs_completed\": " << rep.jobs_completed << ",\n";
  os << "  \"jobs_failed\": " << rep.jobs_failed << ",\n";
  os << "  \"jobs_preempted\": " << rep.jobs_preempted << ",\n";
  os << "  \"job_retries\": " << rep.job_retries << ",\n";
  os << "  \"units_completed\": " << rep.units_completed << ",\n";
  os << "  \"devices_lost\": " << rep.devices_lost << ",\n";
  os << "  \"jobs_migrated\": " << rep.jobs_migrated << ",\n";
  os << "  \"jobs_shed\": " << rep.jobs_shed << ",\n";
  os << "  \"queue_wait_p50_seconds\": " << json_double(rep.queue_wait_p50)
     << ",\n";
  os << "  \"queue_wait_p95_seconds\": " << json_double(rep.queue_wait_p95)
     << ",\n";
  os << "  \"queue_wait_p99_seconds\": " << json_double(rep.queue_wait_p99)
     << ",\n";
  os << "  \"queue_waits_seconds\": [";
  for (size_t i = 0; i < rep.queue_waits.size(); ++i) {
    os << (i == 0 ? "" : ", ") << json_double(rep.queue_waits[i]);
  }
  os << "],\n";
  os << "  \"device_health\": [";
  for (size_t i = 0; i < rep.device_health.size(); ++i) {
    os << (i == 0 ? "" : ", ") << "\"" << escaped(rep.device_health[i])
       << "\"";
  }
  os << "],\n";
  os << "  \"jobs\": [";
  for (size_t i = 0; i < rep.jobs.size(); ++i) {
    const JobReport& j = rep.jobs[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\n";
    os << "      \"id\": " << j.id << ",\n";
    os << "      \"name\": \"" << escaped(j.name) << "\",\n";
    os << "      \"state\": \"" << to_string(j.state) << "\",\n";
    os << "      \"priority\": " << j.priority << ",\n";
    os << "      \"algorithm\": \"" << escaped(j.algorithm) << "\",\n";
    os << "      \"m\": " << j.m << ",\n";
    os << "      \"n\": " << j.n << ",\n";
    os << "      \"blocksize\": " << j.blocksize << ",\n";
    os << "      \"predicted_seconds\": " << json_double(j.predicted_seconds)
       << ",\n";
    os << "      \"predicted_peak_bytes\": " << j.predicted_peak_bytes
       << ",\n";
    os << "      \"attempts\": " << j.attempts << ",\n";
    os << "      \"preemptions\": " << j.preemptions << ",\n";
    os << "      \"retries\": " << j.retries << ",\n";
    os << "      \"migrations\": " << j.migrations << ",\n";
    os << "      \"last_device\": " << j.last_device << ",\n";
    os << "      \"queue_wait_seconds\": "
       << json_double(j.queue_wait_seconds) << ",\n";
    os << "      \"deadline_met\": " << (j.deadline_met ? "true" : "false")
       << ",\n";
    os << "      \"failure\": \"" << escaped(j.failure) << "\",\n";
    os << "      \"stats\": ";
    write_stats(os, j.stats, "      ");
    os << "\n    }";
  }
  os << (rep.jobs.empty() ? "],\n" : "\n  ],\n");
  os << "  \"per_device\": [";
  for (size_t i = 0; i < rep.per_device.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    ";
    write_stats(os, rep.per_device[i], "    ");
  }
  os << (rep.per_device.empty() ? "],\n" : "\n  ],\n");
  os << "  \"fleet\": ";
  write_stats(os, rep.fleet, "  ");
  os << "\n}\n";
}

} // namespace rocqr::serve
