#include "serve/admission.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "qr/autotune.hpp"
#include "qr/checkpoint.hpp"
#include "qr/factorize.hpp"
#include "qr/tsqr_ooc.hpp"
#include "sim/device.hpp"

namespace rocqr::serve {

namespace detail {

qr::QrStats run_driver(sim::Device& dev, const std::string& algorithm,
                       sim::HostMutRef a, sim::HostMutRef r,
                       const qr::QrOptions& opts) {
  const std::optional<qr::Algorithm> alg = qr::parse_algorithm(algorithm);
  if (!alg) {
    throw InvalidArgument("serve: unknown algorithm '" + algorithm +
                          "' (expected recursive, blocking, left, tiled or "
                          "tsqr)");
  }
  return qr::factorize(qr::QrProblem{{&dev}, a, r, *alg, opts});
}

bool known_algorithm(const std::string& algorithm) {
  return algorithm == "recursive" || algorithm == "blocking" ||
         algorithm == "left" || algorithm == "tiled" || algorithm == "tsqr";
}

} // namespace detail

namespace {

/// The dry run mirrors the scheduler's checkpoint cadence but nobody reads
/// the snapshots (phantom checkpoints are schedule-only anyway).
class DiscardSink : public qr::CheckpointSink {
 public:
  void write(const qr::Checkpoint&) override {}
};

} // namespace

AdmissionDecision admit_job(const JobSpec& job, const AdmissionConfig& cfg) {
  AdmissionDecision d;
  if (job.m < job.n || job.n < 1) {
    d.reason = "invalid shape " + format_shape(job.m, job.n) +
               " (need m >= n >= 1)";
    return d;
  }
  if (!detail::known_algorithm(job.algorithm)) {
    d.reason = "unknown algorithm '" + job.algorithm +
               "' (expected recursive, blocking, left, tiled or tsqr)";
    return d;
  }

  const bool tsqr = job.algorithm == "tsqr";
  // The admission budget is per device; for tsqr the quoted
  // predicted_peak_bytes is the fleet-wide sum, so the budget check runs
  // against this separately-tracked max per-device peak.
  bytes_t check_peak = 0;
  try {
    // Base options of every dry run: the job's, minus any caller-provided
    // checkpointing (the scheduler owns the sink) or resume state.
    qr::QrOptions base = job.options;
    base.precision = job.precision;
    base.checkpoint_sink = nullptr;
    base.resume_units = 0;

    index_t b = job.blocksize;
    if (b <= 0) {
      if (tsqr) {
        // Tune on the leaf shape: the per-device work is a recursive OOC
        // factorization of one row block (the widest leaf, rounding up).
        const index_t leaves = qr::detail::tsqr_leaf_count(
            job.m, job.n, static_cast<size_t>(cfg.devices));
        const index_t leaf_rows = (job.m + leaves - 1) / leaves;
        b = qr::tune_blocksize(cfg.spec, leaf_rows, job.n, true, base)
                .best_blocksize;
      } else {
        b = qr::tune_blocksize(cfg.spec, job.m, job.n,
                               job.algorithm == "recursive", base)
                .best_blocksize;
      }
    }
    d.blocksize = b;

    DiscardSink sink;
    qr::QrOptions opts = base;
    opts.blocksize = b;
    opts.checkpoint_sink = &sink;
    opts.checkpoint_every = cfg.checkpoint_every;
    auto a = sim::HostMutRef::phantom(job.m, job.n);
    auto r = sim::HostMutRef::phantom(job.n, job.n);
    if (tsqr) {
      // Phantom replica of the whole fleet, link topology included, so the
      // predicted makespan prices the stacked-R transfers' contention.
      auto link = cfg.shared_link ? std::make_shared<sim::SharedHostLink>()
                                  : std::shared_ptr<sim::SharedHostLink>();
      std::vector<std::unique_ptr<sim::Device>> fleet;
      std::vector<sim::Device*> ptrs;
      for (int i = 0; i < cfg.devices; ++i) {
        fleet.push_back(std::make_unique<sim::Device>(
            cfg.spec, sim::ExecutionMode::Phantom, link));
        if (cfg.paper_calibration) {
          fleet.back()->model().install_paper_calibration();
        }
        ptrs.push_back(fleet.back().get());
      }
      const qr::QrStats stats = qr::factorize(
          qr::QrProblem{ptrs, a, r, qr::Algorithm::Tsqr, opts});
      d.predicted_seconds = stats.total_seconds;
      bytes_t fleet_peak = 0;
      for (const auto& dev : fleet) {
        fleet_peak += dev->memory_peak();
        check_peak = std::max(check_peak, dev->memory_peak());
      }
      d.predicted_peak_bytes = fleet_peak;
    } else {
      sim::Device dev(cfg.spec, sim::ExecutionMode::Phantom);
      if (cfg.paper_calibration) dev.model().install_paper_calibration();
      const qr::QrStats stats =
          detail::run_driver(dev, job.algorithm, a, r, opts);
      d.predicted_seconds = stats.total_seconds;
      d.predicted_peak_bytes = stats.peak_device_bytes;
      check_peak = stats.peak_device_bytes;
    }
  } catch (const Error& e) {
    // Autotune found no feasible blocksize, the explicit blocksize OOMed,
    // or the options were invalid — all per-job rejections, not scheduler
    // failures.
    d.reason = e.what();
    return d;
  }

  const auto budget = static_cast<bytes_t>(
      cfg.memory_fraction * static_cast<double>(cfg.spec.memory_capacity));
  if (check_peak > budget) {
    d.reason = std::string("predicted ") +
               (tsqr ? "per-device peak " : "peak ") +
               format_bytes(check_peak) + " exceeds the admission budget " +
               format_bytes(budget) + " on " + cfg.spec.name;
    return d;
  }
  if (job.deadline_seconds > 0 && d.predicted_seconds > job.deadline_seconds) {
    d.reason = "predicted runtime " + format_seconds(d.predicted_seconds) +
               " misses the deadline " + format_seconds(job.deadline_seconds);
    return d;
  }
  d.admitted = true;
  return d;
}

} // namespace rocqr::serve
