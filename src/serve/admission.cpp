#include "serve/admission.hpp"

#include "common/error.hpp"
#include "common/strings.hpp"
#include "qr/autotune.hpp"
#include "qr/blocking_qr.hpp"
#include "qr/checkpoint.hpp"
#include "qr/left_looking_qr.hpp"
#include "qr/recursive_qr.hpp"
#include "sim/device.hpp"

namespace rocqr::serve {

namespace detail {

qr::QrStats run_driver(sim::Device& dev, const std::string& algorithm,
                       sim::HostMutRef a, sim::HostMutRef r,
                       const qr::QrOptions& opts) {
  if (algorithm == "blocking") return qr::blocking_ooc_qr(dev, a, r, opts);
  if (algorithm == "recursive") return qr::recursive_ooc_qr(dev, a, r, opts);
  if (algorithm == "left") return qr::left_looking_ooc_qr(dev, a, r, opts);
  throw InvalidArgument("serve: unknown algorithm '" + algorithm +
                        "' (expected recursive, blocking or left)");
}

bool known_algorithm(const std::string& algorithm) {
  return algorithm == "recursive" || algorithm == "blocking" ||
         algorithm == "left";
}

} // namespace detail

namespace {

/// The dry run mirrors the scheduler's checkpoint cadence but nobody reads
/// the snapshots (phantom checkpoints are schedule-only anyway).
class DiscardSink : public qr::CheckpointSink {
 public:
  void write(const qr::Checkpoint&) override {}
};

} // namespace

AdmissionDecision admit_job(const JobSpec& job, const AdmissionConfig& cfg) {
  AdmissionDecision d;
  if (job.m < job.n || job.n < 1) {
    d.reason = "invalid shape " + format_shape(job.m, job.n) +
               " (need m >= n >= 1)";
    return d;
  }
  if (!detail::known_algorithm(job.algorithm)) {
    d.reason = "unknown algorithm '" + job.algorithm +
               "' (expected recursive, blocking or left)";
    return d;
  }

  try {
    // Base options of every dry run: the job's, minus any caller-provided
    // checkpointing (the scheduler owns the sink) or resume state.
    qr::QrOptions base = job.options;
    base.precision = job.precision;
    base.checkpoint_sink = nullptr;
    base.resume_units = 0;

    index_t b = job.blocksize;
    if (b <= 0) {
      b = qr::tune_blocksize(cfg.spec, job.m, job.n,
                             job.algorithm == "recursive", base)
              .best_blocksize;
    }
    d.blocksize = b;

    sim::Device dev(cfg.spec, sim::ExecutionMode::Phantom);
    if (cfg.paper_calibration) dev.model().install_paper_calibration();
    DiscardSink sink;
    qr::QrOptions opts = base;
    opts.blocksize = b;
    opts.checkpoint_sink = &sink;
    opts.checkpoint_every = cfg.checkpoint_every;
    auto a = sim::HostMutRef::phantom(job.m, job.n);
    auto r = sim::HostMutRef::phantom(job.n, job.n);
    const qr::QrStats stats =
        detail::run_driver(dev, job.algorithm, a, r, opts);
    d.predicted_seconds = stats.total_seconds;
    d.predicted_peak_bytes = stats.peak_device_bytes;
  } catch (const Error& e) {
    // Autotune found no feasible blocksize, the explicit blocksize OOMed,
    // or the options were invalid — all per-job rejections, not scheduler
    // failures.
    d.reason = e.what();
    return d;
  }

  const auto budget = static_cast<bytes_t>(
      cfg.memory_fraction * static_cast<double>(cfg.spec.memory_capacity));
  if (d.predicted_peak_bytes > budget) {
    d.reason = "predicted peak " + format_bytes(d.predicted_peak_bytes) +
               " exceeds the admission budget " + format_bytes(budget) +
               " on " + cfg.spec.name;
    return d;
  }
  if (job.deadline_seconds > 0 && d.predicted_seconds > job.deadline_seconds) {
    d.reason = "predicted runtime " + format_seconds(d.predicted_seconds) +
               " misses the deadline " + format_seconds(job.deadline_seconds);
    return d;
  }
  d.admitted = true;
  return d;
}

} // namespace rocqr::serve
