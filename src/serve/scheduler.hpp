// Multi-job QR service scheduler over a simulated device fleet
// (docs/SERVING.md).
//
// The Scheduler owns N sim::Devices (optionally behind one SharedHostLink)
// and drives a batch of admitted JobSpecs to completion with one worker per
// device on a private ThreadPool. Workers race in host wall-clock but the
// fleet advances in *simulated-time* order: a worker only dispatches a job
// or passes a checkpoint when no other device could still act at an earlier
// simulated instant (a conservative event-ordering gate on per-device
// availability bounds, advanced at every checkpoint). Dispatch is a
// priority queue with backfill: the highest-priority ready job runs next on
// the earliest-available device, and jobs whose
// arrival gate has not opened yet are skipped so lower-priority ready work
// fills the idle devices. When every device is busy and a strictly
// higher-priority job becomes ready, the running job with the lowest
// priority (most remaining columns first) is preempted at its next panel
// checkpoint boundary — the driver's own CheckpointSink hook unwinds the
// attempt, and the job later resumes via qr::resume, bit-identical to an
// uninterrupted run. Faults installed on fleet devices are absorbed the
// same way: a failed attempt retries from the job's latest checkpoint up
// to max_job_retries times.
//
// Single-device jobs (algorithms "tiled", "blocking", "left" — mixed
// freely) can be *colocated*: when max_colocated_jobs > 1 and the ready
// queue outnumbers the idle devices, a worker that picks such a job also
// claims up to that many further ready deadline-free single-device jobs
// (same precision, combined predicted peaks within the admission budget)
// and dispatches them as ONE task graph via qr::detail::run_batch — each
// algorithm lowers to its own node program, and their move-in / compute /
// move-out nodes interleave on the device's three engines, so one job's
// transfers overlap another's computes (DAG multi-tenancy instead of
// whole-device ownership). Per-job stats come from the shared trace
// window filtered by each job's "j<id>." op-name prefix. A preemption or
// fault unwinds the whole batch; every member requeues from its own
// latest checkpoint and resumes bit-identically — the batch programs'
// arithmetic matches the solo drivers' bit for bit.
//
// Same-shape, same-precision "blocking" jobs go one step further: when
// max_fused_jobs > 1 the dispatcher *fuses* up to that many ready
// deadline-free members into ONE block-diagonal batched node program
// (qr::detail::run_fused_batch) — per panel round a single batched
// move-in, panel kernel, GEMM pair and move-out cover every member, so the
// fixed per-op latencies (link turnaround, kernel launch) are paid once
// per round instead of once per job. Members must also share blocksize,
// panel options and checkpoint position; per-member R (and Q) stays
// bit-identical to a solo run, and a preempted member resumes solo or in
// a different fusion. Fusion is tried before colocation.
//
// Jobs with algorithm "tsqr" are *gang-scheduled*: one job acquires every
// device in the fleet atomically and runs the TSQR driver across them.
// While a gang job is the top pick the fleet drains — idle workers stop
// backfilling lower-priority work (and, with preemption on, every running
// job of strictly lower priority is asked to yield) until the fleet is
// fully idle and the gang dispatches in one step, so backfill can never
// deadlock or starve it. A running gang checkpoints at leaf-factorization
// boundaries ("tsqr" driver tag), preempts and resumes like any other job,
// and its per-device trace windows roll up through
// qr::combine_device_stats.
//
// Fleet health (docs/SERVING.md "Fleet failover & load shedding"): every
// device carries a Healthy/Suspect/Dead state. A failed attempt marks its
// device Suspect; device_failure_threshold consecutive failures — or a
// DeviceLost error (injected `fatal` fault), or a simulated-clock watchdog
// trip (an op exceeding watchdog_timeout) — declare it Dead. A dead
// device's worker exits, its running job is *migrated*: re-quoted through
// the phantom admission path against the surviving fleet and requeued from
// its latest checkpoint (not charged against max_job_retries). A TSQR gang
// that loses a member re-plans on the survivors: the checkpoint pins the
// leaf partition, completed leaves keep their stacked R factors, and only
// the dead member's leaves re-factor (round-robin onto survivors) — the
// result stays bit-identical to an uninterrupted run at that leaf layout.
// After every fleet shrink, outstanding deadline jobs are re-quoted against
// the remaining capacity and the ones that can no longer make their
// deadline are load-shed (JobState::Shed — a distinct terminal state, not
// a failure).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "qr/checkpoint.hpp"
#include "serve/admission.hpp"
#include "serve/job.hpp"
#include "sim/device.hpp"

namespace rocqr::serve {

struct ServeConfig {
  sim::DeviceSpec spec = sim::DeviceSpec::v100_32gb();
  int devices = 1;
  sim::ExecutionMode mode = sim::ExecutionMode::Phantom;
  /// One PCIe root complex for the whole fleet (host transfers serialize).
  bool shared_link = false;
  bool paper_calibration = true;
  /// Per-device fault plan specs (sim::FaultPlan grammar); "" = clean, and
  /// devices beyond the vector's length are clean.
  std::vector<std::string> device_faults;
  /// Allow checkpoint-boundary preemption of lower-priority running jobs.
  bool preemption = true;
  /// Checkpoint cadence of every attempt (units between sink writes). Also
  /// the preemption latency: a job can only yield at a written checkpoint.
  index_t checkpoint_every = 1;
  /// Fault-triggered restarts per job before it is marked Failed.
  int max_job_retries = 2;
  /// Admission head-room: reject jobs predicted to exceed this fraction of
  /// device memory.
  double admission_memory_fraction = 1.0;
  /// Maximum single-device jobs (tiled/blocking/left) colocated on one
  /// device as a single task graph (DAG multi-tenancy). 1 = every job owns
  /// its device exclusively.
  /// Colocated extras must match the primary's precision and their summed
  /// predicted peaks must fit the admission budget.
  int max_colocated_jobs = 1;
  /// Maximum same-shape "blocking" jobs *fused* into one batched node
  /// program (qr::detail::run_fused_batch): per panel round the fused graph
  /// issues one batched move-in / panel kernel / GEMM pair / move-out
  /// covering all members, so the fixed per-op latencies are paid once per
  /// round instead of once per job — the batched small-QR serving path.
  /// 1 = off. Fused members must share m/n/blocksize/precision/panel
  /// options and checkpoint position, be deadline-free and abft-free, and
  /// their summed predicted peaks must fit the admission budget. Fusion is
  /// tried before colocation; per-member results stay bit-identical to solo
  /// runs (tests/qr_fused_batch_test.cpp).
  int max_fused_jobs = 1;
  /// Per-op watchdog (simulated seconds): at every checkpoint the scheduler
  /// scans the attempt's new trace events and treats any single operation
  /// longer than this as a hang — the attempt unwinds and the offending
  /// device takes a health strike (it need not have *thrown* anything).
  /// 0 = disabled.
  double watchdog_timeout = 0;
  /// Consecutive failed attempts (thrown faults or watchdog trips) on one
  /// device before it is declared Dead. The first strike marks it Suspect;
  /// a successful attempt clears the strikes. A DeviceLost error kills the
  /// device immediately regardless of this threshold.
  int device_failure_threshold = 3;
};

/// Per-device health state driven by the scheduler's failure accounting.
enum class DeviceHealth { Healthy, Suspect, Dead };

const char* to_string(DeviceHealth h);

class Scheduler {
 public:
  explicit Scheduler(ServeConfig cfg);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Admission control: phantom dry run of the job as the fleet would run
  /// it. Admitted jobs are queued for run(); rejected jobs are recorded
  /// (and reported) but never dispatched. Call before run().
  AdmissionDecision submit(const JobSpec& spec);

  /// Builds the fleet and drives every admitted job to a terminal state.
  /// Single-shot: a second call throws InvalidArgument.
  FleetReport run();

  const ServeConfig& config() const { return cfg_; }

  /// The fleet (populated by run(); empty before). Exposed so callers can
  /// export traces or derive their own aggregate views.
  const std::vector<std::unique_ptr<sim::Device>>& devices() const {
    return devices_;
  }

 private:
  struct Job;
  class PreemptSink;
  /// Internal unwind token thrown from the checkpoint sink. Deliberately
  /// not a rocqr::Error so no driver-level recovery path can swallow it.
  struct PreemptRequest {};
  /// Internal unwind token for a watchdog trip (an op exceeded
  /// ServeConfig::watchdog_timeout on `device`). Like PreemptRequest, not a
  /// rocqr::Error so nothing downstream can absorb it.
  struct WatchdogTrip {
    int device = -1;
  };
  /// How an attempt ended, for the device-health accounting: Clean resets
  /// the device's strikes, DeviceFailure adds one (Suspect, then Dead at
  /// the threshold), DeviceLoss kills the device outright.
  enum class AttemptOutcome { Clean, DeviceFailure, DeviceLoss };

  void worker(int device_index);
  void run_attempt(int device_index, Job& job);
  void run_colocated_attempt(int device_index,
                             const std::vector<Job*>& batch);
  /// Dispatches a coalesced batch of same-shape "blocking" jobs through
  /// qr::detail::run_fused_batch (block-diagonal batched ops, one task
  /// -graph round per fused panel). Same unwind/requeue contract as the
  /// colocated path.
  void run_fused_attempt(int device_index, const std::vector<Job*>& batch);
  void run_gang_attempt(Job& job);
  void finish_colocated_attempt(const std::vector<Job*>& batch,
                                size_t window, int device_index,
                                JobState state, const std::string& failure,
                                AttemptOutcome outcome);
  /// Fused epilogue: per-member stats are an even 1/K split of the fused
  /// window's volume aggregates (the batched ops carry no per-job op-name
  /// prefix; the split is exact because the members are identical in shape
  /// and arithmetic).
  void finish_fused_attempt(const std::vector<Job*>& batch, size_t window,
                            int device_index, JobState state,
                            const std::string& failure,
                            AttemptOutcome outcome);
  void finish_attempt(Job& job, size_t window, int device_index,
                      JobState state, const std::string& failure,
                      AttemptOutcome outcome);
  void finish_gang_attempt(Job& job, const std::vector<size_t>& windows,
                           JobState state, const std::string& failure,
                           AttemptOutcome outcome, int failed_device);
  void record_outcome_locked(Job& job, JobState state,
                             const std::string& failure);
  void on_unit_completed(Job& job, const qr::Checkpoint& cp);
  // --- Fleet health & failover ---------------------------------------------
  int alive_devices_locked() const;
  /// Adds a strike to the device; returns true if it just became Dead.
  bool note_device_failure_locked(int device_index);
  void note_device_success_locked(int device_index);
  /// Marks the device Dead (idempotent; returns true on the transition),
  /// then re-quotes outstanding deadline jobs against the shrunken fleet
  /// and fails stranded work if no device survives.
  bool declare_dead_locked(int device_index);
  /// Phantom re-admission of `job` on `alive` devices with its blocksize
  /// pinned (a resume must keep the checkpointed panel width).
  AdmissionDecision requote_locked(const Job& job, int alive) const;
  void shed_locked(Job& job, const std::string& reason);
  void requote_outstanding_locked();
  /// Requeues a job whose device died: re-quoted onto the survivors, not
  /// charged against max_job_retries; sheds/fails it if no survivor can
  /// take it.
  void migrate_locked(Job& job, const std::string& failure);
  /// Scans the attempt's new trace events for an op longer than the
  /// watchdog timeout; returns the offending device or -1. Advances the
  /// job's scan cursors.
  int watchdog_tripped_locked(Job& job);
  bool may_act_locked(int device_index, double t) const;
  /// Latest availability bound published by any alive device — the fleet's
  /// simulated "now" for queue-wait accounting.
  double sim_now_locked() const;
  void release_arrivals_locked();
  bool force_earliest_arrival_locked();
  bool work_pending_locked() const;
  Job* pick_locked() const;
  Job* dispatchable_locked() const;
  void maybe_preempt_locked();
  FleetReport build_report();

  ServeConfig cfg_;
  std::vector<std::unique_ptr<Job>> jobs_;
  std::vector<std::unique_ptr<sim::Device>> devices_;

  std::mutex mutex_;
  std::condition_variable cv_;
  /// Simulated-time availability bound per device: exact trace end while
  /// idle, the latest checkpoint's trace end while busy. Workers only
  /// dispatch or pass a checkpoint when their device is not ahead of any
  /// device that could still act earlier — the fleet advances in simulated
  /// -time order even though workers race in wall-clock.
  std::vector<double> device_avail_;
  std::vector<char> device_busy_;
  index_t fleet_units_ = 0;
  /// Busy devices (a gang job counts as cfg_.devices of them).
  int running_ = 0;
  /// A gang job currently owns the whole fleet.
  bool gang_active_ = false;
  std::int64_t preempt_events_ = 0;
  std::int64_t retry_events_ = 0;
  /// Exact simulated queue wait of every dispatch, in dispatch order
  /// (FleetReport::queue_waits; exact percentiles come from here, the
  /// telemetry histogram only quantizes).
  std::vector<double> queue_waits_;
  std::vector<DeviceHealth> device_health_;
  /// Consecutive failed attempts per device (reset by a clean attempt).
  std::vector<int> device_failures_;
  int devices_lost_ = 0;
  std::int64_t migrate_events_ = 0;
  std::int64_t shed_events_ = 0;
  bool ran_ = false;
};

} // namespace rocqr::serve
