// Multi-job QR service scheduler over a simulated device fleet
// (docs/SERVING.md).
//
// The Scheduler owns N sim::Devices (optionally behind one SharedHostLink)
// and drives a batch of admitted JobSpecs to completion with one worker per
// device on a private ThreadPool. Workers race in host wall-clock but the
// fleet advances in *simulated-time* order: a worker only dispatches a job
// or passes a checkpoint when no other device could still act at an earlier
// simulated instant (a conservative event-ordering gate on per-device
// availability bounds, advanced at every checkpoint). Dispatch is a
// priority queue with backfill: the highest-priority ready job runs next on
// the earliest-available device, and jobs whose
// arrival gate has not opened yet are skipped so lower-priority ready work
// fills the idle devices. When every device is busy and a strictly
// higher-priority job becomes ready, the running job with the lowest
// priority (most remaining columns first) is preempted at its next panel
// checkpoint boundary — the driver's own CheckpointSink hook unwinds the
// attempt, and the job later resumes via qr::resume, bit-identical to an
// uninterrupted run. Faults installed on fleet devices are absorbed the
// same way: a failed attempt retries from the job's latest checkpoint up
// to max_job_retries times.
//
// Jobs with algorithm "tiled" can be *colocated*: when
// max_colocated_jobs > 1 and the ready queue outnumbers the idle devices,
// a worker that picks a tiled job also claims up to that many further
// ready deadline-free tiled jobs (same precision, combined predicted
// peaks within the admission budget) and dispatches them as ONE
// task graph via qr::detail::run_tiled_batch — their move-in / compute /
// move-out nodes interleave on the device's three engines, so one job's
// transfers overlap another's computes (DAG multi-tenancy instead of
// whole-device ownership). Per-job stats come from the shared trace
// window filtered by each job's "j<id>." op-name prefix. A preemption or
// fault unwinds the whole batch; every member requeues from its own
// latest checkpoint and resumes bit-identically.
//
// Jobs with algorithm "tsqr" are *gang-scheduled*: one job acquires every
// device in the fleet atomically and runs the TSQR driver across them.
// While a gang job is the top pick the fleet drains — idle workers stop
// backfilling lower-priority work (and, with preemption on, every running
// job of strictly lower priority is asked to yield) until the fleet is
// fully idle and the gang dispatches in one step, so backfill can never
// deadlock or starve it. A running gang checkpoints at leaf-factorization
// boundaries ("tsqr" driver tag), preempts and resumes like any other job,
// and its per-device trace windows roll up through
// qr::combine_device_stats.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "qr/checkpoint.hpp"
#include "serve/admission.hpp"
#include "serve/job.hpp"
#include "sim/device.hpp"

namespace rocqr::serve {

struct ServeConfig {
  sim::DeviceSpec spec = sim::DeviceSpec::v100_32gb();
  int devices = 1;
  sim::ExecutionMode mode = sim::ExecutionMode::Phantom;
  /// One PCIe root complex for the whole fleet (host transfers serialize).
  bool shared_link = false;
  bool paper_calibration = true;
  /// Per-device fault plan specs (sim::FaultPlan grammar); "" = clean, and
  /// devices beyond the vector's length are clean.
  std::vector<std::string> device_faults;
  /// Allow checkpoint-boundary preemption of lower-priority running jobs.
  bool preemption = true;
  /// Checkpoint cadence of every attempt (units between sink writes). Also
  /// the preemption latency: a job can only yield at a written checkpoint.
  index_t checkpoint_every = 1;
  /// Fault-triggered restarts per job before it is marked Failed.
  int max_job_retries = 2;
  /// Admission head-room: reject jobs predicted to exceed this fraction of
  /// device memory.
  double admission_memory_fraction = 1.0;
  /// Maximum "tiled" jobs colocated on one device as a single task graph
  /// (DAG multi-tenancy). 1 = every job owns its device exclusively.
  /// Colocated extras must match the primary's precision and their summed
  /// predicted peaks must fit the admission budget.
  int max_colocated_jobs = 1;
};

class Scheduler {
 public:
  explicit Scheduler(ServeConfig cfg);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Admission control: phantom dry run of the job as the fleet would run
  /// it. Admitted jobs are queued for run(); rejected jobs are recorded
  /// (and reported) but never dispatched. Call before run().
  AdmissionDecision submit(const JobSpec& spec);

  /// Builds the fleet and drives every admitted job to a terminal state.
  /// Single-shot: a second call throws InvalidArgument.
  FleetReport run();

  const ServeConfig& config() const { return cfg_; }

  /// The fleet (populated by run(); empty before). Exposed so callers can
  /// export traces or derive their own aggregate views.
  const std::vector<std::unique_ptr<sim::Device>>& devices() const {
    return devices_;
  }

 private:
  struct Job;
  class PreemptSink;
  /// Internal unwind token thrown from the checkpoint sink. Deliberately
  /// not a rocqr::Error so no driver-level recovery path can swallow it.
  struct PreemptRequest {};

  void worker(int device_index);
  void run_attempt(int device_index, Job& job);
  void run_colocated_attempt(int device_index,
                             const std::vector<Job*>& batch);
  void run_gang_attempt(Job& job);
  void finish_colocated_attempt(const std::vector<Job*>& batch,
                                size_t window, int device_index,
                                JobState state, const std::string& failure);
  void finish_attempt(Job& job, size_t window, int device_index,
                      JobState state, const std::string& failure);
  void finish_gang_attempt(Job& job, const std::vector<size_t>& windows,
                           JobState state, const std::string& failure);
  void record_outcome_locked(Job& job, JobState state,
                             const std::string& failure);
  void on_unit_completed(Job& job, const qr::Checkpoint& cp);
  bool may_act_locked(int device_index, double t) const;
  void release_arrivals_locked();
  bool force_earliest_arrival_locked();
  bool work_pending_locked() const;
  Job* pick_locked() const;
  Job* dispatchable_locked() const;
  void maybe_preempt_locked();
  FleetReport build_report();

  ServeConfig cfg_;
  std::vector<std::unique_ptr<Job>> jobs_;
  std::vector<std::unique_ptr<sim::Device>> devices_;

  std::mutex mutex_;
  std::condition_variable cv_;
  /// Simulated-time availability bound per device: exact trace end while
  /// idle, the latest checkpoint's trace end while busy. Workers only
  /// dispatch or pass a checkpoint when their device is not ahead of any
  /// device that could still act earlier — the fleet advances in simulated
  /// -time order even though workers race in wall-clock.
  std::vector<double> device_avail_;
  std::vector<char> device_busy_;
  index_t fleet_units_ = 0;
  /// Busy devices (a gang job counts as cfg_.devices of them).
  int running_ = 0;
  /// A gang job currently owns the whole fleet.
  bool gang_active_ = false;
  std::int64_t preempt_events_ = 0;
  std::int64_t retry_events_ = 0;
  bool ran_ = false;
};

} // namespace rocqr::serve
