// JSON I/O for the QR service: the job-batch input format of
// `rocqr_cli serve --jobs=<file>` and the machine-readable fleet report
// (schemas in docs/SERVING.md).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "serve/job.hpp"

namespace rocqr::serve {

/// Major version of the jobs/report JSON schemas this build reads and
/// writes. Inputs carrying a greater major are rejected (the file was
/// written by a newer rocqr and may use keys this parser would silently
/// drop); older majors — including the v1 bare-array job batch — parse.
inline constexpr int kJobsSchemaVersion = 2;

/// Parses a job batch: a versioned envelope around an array of flat
/// objects, e.g.
///
///   {"schema_version": 2, "jobs": [
///     {"name": "a", "m": 4096, "n": 4096, "algorithm": "recursive",
///      "priority": 2, "deadline": 1.5, "precision": "fp16",
///      "blocksize": 0, "arrival_after_units": 0}]}
///
/// A bare top-level array (the v1 format, no envelope) is still accepted.
/// Only "m" and "n" are required per job. "deadline" maps to
/// deadline_seconds, "precision" is "fp16" (FP16_FP32, default) or
/// "fp32", "algo" is accepted as a shorthand for "algorithm". Unknown
/// keys, malformed JSON, and schema_version majors newer than
/// kJobsSchemaVersion throw rocqr::InvalidArgument naming the offender.
/// The parser covers exactly this flat shape — strings, numbers and
/// booleans — not general JSON.
std::vector<JobSpec> parse_jobs_json(const std::string& text);

/// Writes the fleet report as a deterministic JSON object:
/// "schema_version" (kJobsSchemaVersion), scalar tallies, exact queue-wait
/// percentiles plus the raw "queue_waits_seconds" record, a "jobs" array
/// in submission order, and "per_device" stats. Every double is formatted
/// with max_digits10 significant digits, so reloading the file reproduces
/// each value bit-exactly (pinned by tests/serve_jobs_io_test.cpp).
void write_fleet_report_json(std::ostream& os, const FleetReport& rep);

} // namespace rocqr::serve
