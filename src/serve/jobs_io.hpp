// JSON I/O for the QR service: the job-batch input format of
// `rocqr_cli serve --jobs=<file>` and the machine-readable fleet report
// (schemas in docs/SERVING.md).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "serve/job.hpp"

namespace rocqr::serve {

/// Parses a job batch: a JSON array of flat objects, e.g.
///
///   [{"name": "a", "m": 4096, "n": 4096, "algorithm": "recursive",
///     "priority": 2, "deadline": 1.5, "precision": "fp16",
///     "blocksize": 0, "arrival_after_units": 0}]
///
/// Only "m" and "n" are required. "deadline" maps to deadline_seconds,
/// "precision" is "fp16" (FP16_FP32, default) or "fp32", "algo" is accepted
/// as a shorthand for "algorithm". Unknown keys and malformed JSON throw
/// rocqr::InvalidArgument naming the offender. The parser covers exactly
/// this flat shape — strings, numbers and booleans — not general JSON.
std::vector<JobSpec> parse_jobs_json(const std::string& text);

/// Writes the fleet report as a deterministic JSON object: scalar tallies,
/// a "jobs" array in submission order, and "per_device" stats.
void write_fleet_report_json(std::ostream& os, const FleetReport& rep);

} // namespace rocqr::serve
