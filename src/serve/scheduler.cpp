#include "serve/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/telemetry.hpp"
#include "common/thread_pool.hpp"
#include "qr/factorize.hpp"
#include "qr/multi_gpu_qr.hpp"
#include "qr/tiled_qr.hpp"
#include "sim/faults.hpp"
#include "sim/trace_export.hpp"

namespace rocqr::serve {

const char* to_string(JobState s) {
  switch (s) {
  case JobState::Rejected: return "rejected";
  case JobState::Queued: return "queued";
  case JobState::Running: return "running";
  case JobState::Preempted: return "preempted";
  case JobState::Completed: return "completed";
  case JobState::Failed: return "failed";
  case JobState::Shed: return "shed";
  }
  return "?";
}

const char* to_string(DeviceHealth h) {
  switch (h) {
  case DeviceHealth::Healthy: return "healthy";
  case DeviceHealth::Suspect: return "suspect";
  case DeviceHealth::Dead: return "dead";
  }
  return "?";
}

namespace {

telemetry::Counter& counter(const char* name) {
  return telemetry::MetricsRegistry::global().counter(name);
}

/// Contiguous column-major snapshot of a host ref (the checkpoint payload
/// layout); empty for phantom refs.
std::vector<float> snapshot_host(sim::HostMutRef src) {
  std::vector<float> out;
  if (src.data == nullptr) return out;
  out.resize(static_cast<size_t>(src.rows) * static_cast<size_t>(src.cols));
  for (index_t j = 0; j < src.cols; ++j) {
    for (index_t i = 0; i < src.rows; ++i) {
      out[static_cast<size_t>(i) + static_cast<size_t>(j) * src.rows] =
          src.data[i + j * src.ld];
    }
  }
  return out;
}

/// Algorithms the colocation packer may fuse into one task graph:
/// single-device node programs of qr::detail::run_batch. TSQR gangs and
/// the fleet-parallel drivers keep whole-device (or whole-fleet)
/// ownership.
bool colocatable_algorithm(const std::string& algorithm) {
  return algorithm == "tiled" || algorithm == "blocking" ||
         algorithm == "left";
}

/// Inverse of snapshot_host: writes a checkpoint payload back into the
/// job's host ref (no-op for phantom refs). The colocated batch path
/// restores here because qr::detail::run_batch — unlike qr::resume —
/// takes already-restored host data plus per-job resume_units.
void restore_host(sim::HostMutRef dst, const std::vector<float>& src) {
  if (dst.data == nullptr) return;
  for (index_t j = 0; j < dst.cols; ++j) {
    for (index_t i = 0; i < dst.rows; ++i) {
      dst.data[i + j * dst.ld] =
          src[static_cast<size_t>(i) + static_cast<size_t>(j) * dst.rows];
    }
  }
}

/// Folds one attempt's trace window into the job's running total. The
/// busy/volume fields sum; total_seconds accumulates the attempt spans
/// (device time consumed, including work a preemption discarded) rather
/// than re-deriving last_end - first_start across attempts, which would
/// count the queued gaps between them.
/// Even 1/K attribution of a fused window (mirrors the split
/// qr::detail::run_fused_batch returns): volume aggregates divide by K,
/// span fields and the device peak stay whole — the member occupied the
/// device for the whole fused window, matching the colocated path's
/// per-member attribution semantics.
qr::QrStats split_fused_stats(qr::QrStats whole, int members) {
  const auto k = static_cast<double>(members);
  whole.panel_seconds /= k;
  whole.gemm_seconds /= k;
  whole.d2d_seconds /= k;
  whole.h2d_seconds /= k;
  whole.d2h_seconds /= k;
  whole.compute_seconds /= k;
  whole.bytes_h2d =
      static_cast<bytes_t>(static_cast<double>(whole.bytes_h2d) / k);
  whole.bytes_d2h =
      static_cast<bytes_t>(static_cast<double>(whole.bytes_d2h) / k);
  whole.bytes_d2d =
      static_cast<bytes_t>(static_cast<double>(whole.bytes_d2d) / k);
  whole.flops = static_cast<flops_t>(static_cast<double>(whole.flops) / k);
  return whole;
}

void accumulate_stats(qr::QrStats& into, const qr::QrStats& s) {
  const bool had_events = into.events > 0;
  into.panel_seconds += s.panel_seconds;
  into.gemm_seconds += s.gemm_seconds;
  into.d2d_seconds += s.d2d_seconds;
  into.h2d_seconds += s.h2d_seconds;
  into.d2h_seconds += s.d2h_seconds;
  into.compute_seconds += s.compute_seconds;
  into.bytes_h2d += s.bytes_h2d;
  into.bytes_d2h += s.bytes_d2h;
  into.bytes_d2d += s.bytes_d2d;
  into.flops += s.flops;
  into.panels += s.panels;
  into.events += s.events;
  into.peak_device_bytes =
      std::max(into.peak_device_bytes, s.peak_device_bytes);
  into.total_seconds += s.total_seconds;
  if (s.events > 0) {
    into.first_start = had_events ? std::min(into.first_start, s.first_start)
                                  : s.first_start;
    into.last_end = std::max(into.last_end, s.last_end);
  }
}

} // namespace

struct Scheduler::Job {
  JobSpec spec;
  int id = 0;
  JobState state = JobState::Queued;
  /// Gang-scheduled: acquires the whole fleet atomically (algorithm "tsqr").
  bool gang = false;
  index_t blocksize = 0;
  double predicted_seconds = 0;
  bytes_t predicted_peak_bytes = 0;
  std::string failure;
  int attempts = 0;
  int preemptions = 0;
  int retries = 0;
  int migrations = 0;
  int last_device = -1;
  /// Gang only: the (alive) devices acquired at the current dispatch.
  std::vector<int> gang_devices;
  /// Per-attempt trace cursor(s) for the watchdog scan: one entry on
  /// last_device for solo/colocated attempts, one per gang member.
  std::vector<size_t> watch_from;
  /// Arrival gate opened (arrival_after_units reached).
  bool arrived = false;
  /// Set under the scheduler mutex; the job's sink observes it at its next
  /// checkpoint write and unwinds the attempt.
  bool preempt_requested = false;
  bool has_checkpoint = false;
  /// Latest consistent state: the initial snapshot before the first
  /// dispatch, then every checkpoint the driver writes. All attempts start
  /// from here via qr::resume (or, colocated, run_batch with
  /// resume_units).
  qr::Checkpoint checkpoint;
  qr::QrStats stats{};
  double queue_wait_seconds = 0;
  /// Simulated instant the job last became ready (arrival release,
  /// preemption park, retry requeue, or migration) — the fleet's latest
  /// published availability bound at that moment. Dispatch charges
  /// max(0, device bound - ready_sim) as the queueing episode's exact wait.
  double ready_sim = 0;
};

/// Per-attempt checkpoint sink: records progress on the job and doubles as
/// the preemption point (the only place an attempt can safely unwind — the
/// driver has just synchronized the device and the snapshot is a consistent
/// prefix).
class Scheduler::PreemptSink : public qr::CheckpointSink {
 public:
  PreemptSink(Scheduler& sched, Job& job) : sched_(sched), job_(job) {}
  void write(const qr::Checkpoint& cp) override {
    sched_.on_unit_completed(job_, cp);
  }

 private:
  Scheduler& sched_;
  Job& job_;
};

Scheduler::Scheduler(ServeConfig cfg) : cfg_(std::move(cfg)) {
  ROCQR_CHECK(cfg_.devices >= 1, "serve::Scheduler: need at least 1 device");
  ROCQR_CHECK(cfg_.checkpoint_every >= 1,
              "serve::Scheduler: checkpoint_every must be >= 1");
  ROCQR_CHECK(cfg_.max_job_retries >= 0,
              "serve::Scheduler: max_job_retries must be >= 0");
  ROCQR_CHECK(cfg_.admission_memory_fraction > 0 &&
                  cfg_.admission_memory_fraction <= 1.0,
              "serve::Scheduler: admission_memory_fraction must be in (0,1]");
  ROCQR_CHECK(cfg_.max_colocated_jobs >= 1,
              "serve::Scheduler: max_colocated_jobs must be >= 1");
  ROCQR_CHECK(cfg_.max_fused_jobs >= 1,
              "serve::Scheduler: max_fused_jobs must be >= 1");
  ROCQR_CHECK(cfg_.watchdog_timeout >= 0,
              "serve::Scheduler: watchdog_timeout must be >= 0");
  ROCQR_CHECK(cfg_.device_failure_threshold >= 1,
              "serve::Scheduler: device_failure_threshold must be >= 1");
}

Scheduler::~Scheduler() = default;

AdmissionDecision Scheduler::submit(const JobSpec& spec) {
  AdmissionConfig acfg;
  acfg.spec = cfg_.spec;
  acfg.devices = cfg_.devices;
  acfg.shared_link = cfg_.shared_link;
  acfg.checkpoint_every = cfg_.checkpoint_every;
  acfg.memory_fraction = cfg_.admission_memory_fraction;
  acfg.paper_calibration = cfg_.paper_calibration;
  AdmissionDecision d = admit_job(spec, acfg);

  if (d.admitted && cfg_.mode == sim::ExecutionMode::Real) {
    if (spec.a.data == nullptr || spec.r.data == nullptr) {
      d.admitted = false;
      d.reason = "a Real-mode fleet needs host A and R buffers on the job";
    } else if (spec.a.rows != spec.m || spec.a.cols != spec.n ||
               spec.r.rows != spec.n || spec.r.cols != spec.n) {
      d.admitted = false;
      d.reason = "host buffer shapes do not match the job's m x n";
    }
  }

  std::lock_guard<std::mutex> lk(mutex_);
  ROCQR_CHECK(!ran_, "serve::Scheduler: submit after run()");
  auto job = std::make_unique<Job>();
  job->spec = spec;
  job->gang = spec.algorithm == "tsqr";
  job->id = static_cast<int>(jobs_.size());
  d.job_id = job->id;
  if (d.admitted) {
    job->state = JobState::Queued;
    job->blocksize = d.blocksize;
    job->predicted_seconds = d.predicted_seconds;
    job->predicted_peak_bytes = d.predicted_peak_bytes;
    counter("serve.jobs_admitted").increment();
  } else {
    job->state = JobState::Rejected;
    job->failure = d.reason;
    counter("serve.jobs_rejected").increment();
  }
  jobs_.push_back(std::move(job));
  return d;
}

FleetReport Scheduler::run() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    ROCQR_CHECK(!ran_, "serve::Scheduler: run() is single-shot");
    ran_ = true;
  }

  auto link = cfg_.shared_link ? std::make_shared<sim::SharedHostLink>()
                               : std::shared_ptr<sim::SharedHostLink>();
  for (int i = 0; i < cfg_.devices; ++i) {
    devices_.push_back(
        std::make_unique<sim::Device>(cfg_.spec, cfg_.mode, link));
    if (cfg_.paper_calibration) {
      devices_.back()->model().install_paper_calibration();
    }
    if (static_cast<size_t>(i) < cfg_.device_faults.size() &&
        !cfg_.device_faults[static_cast<size_t>(i)].empty()) {
      devices_.back()->install_faults(
          sim::FaultPlan::parse(cfg_.device_faults[static_cast<size_t>(i)]));
    }
  }

  bool any_queued = false;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    device_avail_.assign(static_cast<size_t>(cfg_.devices), 0.0);
    device_busy_.assign(static_cast<size_t>(cfg_.devices), 0);
    device_health_.assign(static_cast<size_t>(cfg_.devices),
                          DeviceHealth::Healthy);
    device_failures_.assign(static_cast<size_t>(cfg_.devices), 0);
    release_arrivals_locked();
    for (const auto& job : jobs_) any_queued |= job->state == JobState::Queued;
  }
  if (any_queued) {
    // A private pool sized to the fleet: one worker per device regardless
    // of the host's core count (the simulated devices do the "computing";
    // nested Real-mode host kernels degrade to serial inside the workers
    // per the ThreadPool reentrancy contract).
    ThreadPool pool(static_cast<unsigned>(cfg_.devices));
    pool.parallel_for(cfg_.devices, [this](index_t d0, index_t d1) {
      for (index_t d = d0; d < d1; ++d) worker(static_cast<int>(d));
    });
  }
  return build_report();
}

double Scheduler::sim_now_locked() const {
  double now = 0;
  for (int e = 0; e < cfg_.devices; ++e) {
    const auto eu = static_cast<size_t>(e);
    if (device_health_[eu] == DeviceHealth::Dead) continue;
    now = std::max(now, device_avail_[eu]);
  }
  return now;
}

void Scheduler::release_arrivals_locked() {
  const double now = sim_now_locked();
  for (const auto& up : jobs_) {
    Job& job = *up;
    if (job.state != JobState::Queued || job.arrived) continue;
    if (job.spec.arrival_after_units <= fleet_units_) {
      job.arrived = true;
      job.ready_sim = now;
    }
  }
}

bool Scheduler::force_earliest_arrival_locked() {
  Job* earliest = nullptr;
  for (const auto& up : jobs_) {
    Job& job = *up;
    if (job.state != JobState::Queued || job.arrived) continue;
    if (earliest == nullptr ||
        job.spec.arrival_after_units < earliest->spec.arrival_after_units) {
      earliest = &job;
    }
  }
  if (earliest == nullptr) return false;
  earliest->arrived = true;
  earliest->ready_sim = sim_now_locked();
  return true;
}

bool Scheduler::work_pending_locked() const {
  for (const auto& job : jobs_) {
    if (job->state == JobState::Queued || job->state == JobState::Running ||
        job->state == JobState::Preempted) {
      return true;
    }
  }
  return false;
}

Scheduler::Job* Scheduler::pick_locked() const {
  Job* best = nullptr;
  for (const auto& up : jobs_) {
    Job& job = *up;
    const bool ready = (job.state == JobState::Queued && job.arrived) ||
                       job.state == JobState::Preempted;
    if (!ready) continue;
    if (best == nullptr) {
      best = &job;
      continue;
    }
    // Priority first; then earliest deadline (none = last); then
    // submission order (ids are submission-ordered, and the scan keeps the
    // first of equals).
    if (job.spec.priority != best->spec.priority) {
      if (job.spec.priority > best->spec.priority) best = &job;
      continue;
    }
    const double jd = job.spec.deadline_seconds > 0
                          ? job.spec.deadline_seconds
                          : std::numeric_limits<double>::infinity();
    const double bd = best->spec.deadline_seconds > 0
                          ? best->spec.deadline_seconds
                          : std::numeric_limits<double>::infinity();
    if (jd < bd) best = &job;
  }
  return best;
}

Scheduler::Job* Scheduler::dispatchable_locked() const {
  // The job an idle worker could legally start right now. A gang top pick
  // drains the fleet: until every device is idle nothing dispatches — not
  // the gang (it needs all devices) and not lower-priority backfill (which
  // would starve it).
  Job* top = pick_locked();
  if (top == nullptr) return nullptr;
  if (top->gang && (running_ > 0 || gang_active_)) return nullptr;
  return top;
}

bool Scheduler::may_act_locked(int device_index, double t) const {
  // A dispatchable job would be started by the earliest-available idle
  // device, so idle devices behind `t` only matter while one exists. (This
  // must be "dispatchable", not merely "ready": while a gang pick drains
  // the fleet, idle devices cannot act, and making running jobs wait on
  // them would deadlock the drain.)
  const bool ready = dispatchable_locked() != nullptr;
  for (int e = 0; e < cfg_.devices; ++e) {
    if (e == device_index) continue;
    const auto eu = static_cast<size_t>(e);
    // A dead device can never act again: waiting on it would deadlock.
    if (device_health_[eu] == DeviceHealth::Dead) continue;
    if (device_avail_[eu] < t && (device_busy_[eu] != 0 || ready)) {
      return false;
    }
  }
  return true;
}

int Scheduler::alive_devices_locked() const {
  int alive = 0;
  for (const DeviceHealth h : device_health_) {
    alive += h != DeviceHealth::Dead;
  }
  return alive;
}

bool Scheduler::note_device_failure_locked(int device_index) {
  const auto du = static_cast<size_t>(device_index);
  if (device_health_[du] == DeviceHealth::Dead) return false;
  if (++device_failures_[du] >= cfg_.device_failure_threshold) {
    return declare_dead_locked(device_index);
  }
  device_health_[du] = DeviceHealth::Suspect;
  return false;
}

void Scheduler::note_device_success_locked(int device_index) {
  const auto du = static_cast<size_t>(device_index);
  if (device_health_[du] == DeviceHealth::Dead) return;
  device_failures_[du] = 0;
  device_health_[du] = DeviceHealth::Healthy;
}

bool Scheduler::declare_dead_locked(int device_index) {
  const auto du = static_cast<size_t>(device_index);
  if (device_health_[du] == DeviceHealth::Dead) return false;
  device_health_[du] = DeviceHealth::Dead;
  ++devices_lost_;
  counter("serve.devices_lost").increment();
  if (alive_devices_locked() == 0) {
    // Nothing left to migrate onto: every non-terminal job is stranded.
    for (const auto& up : jobs_) {
      Job& job = *up;
      if (job.state == JobState::Queued || job.state == JobState::Preempted) {
        job.state = JobState::Failed;
        job.failure = "no surviving devices in the fleet";
        counter("serve.jobs_failed").increment();
      }
    }
  } else {
    // Graceful degradation: the fleet shrank, so every outstanding deadline
    // job's quote is stale — re-quote now and shed what can no longer make
    // it (better an honest early shed than a missed deadline later).
    requote_outstanding_locked();
  }
  return true;
}

AdmissionDecision Scheduler::requote_locked(const Job& job, int alive) const {
  AdmissionConfig acfg;
  acfg.spec = cfg_.spec;
  acfg.devices = alive;
  acfg.shared_link = cfg_.shared_link;
  acfg.checkpoint_every = cfg_.checkpoint_every;
  acfg.memory_fraction = cfg_.admission_memory_fraction;
  acfg.paper_calibration = cfg_.paper_calibration;
  JobSpec pinned = job.spec;
  // A resume must keep the checkpointed panel width — no re-autotuning.
  pinned.blocksize = job.blocksize;
  return admit_job(pinned, acfg);
}

void Scheduler::shed_locked(Job& job, const std::string& reason) {
  job.state = JobState::Shed;
  job.preempt_requested = false;
  job.failure = reason;
  ++shed_events_;
  counter("serve.jobs_shed").increment();
}

void Scheduler::requote_outstanding_locked() {
  const int alive = alive_devices_locked();
  for (const auto& up : jobs_) {
    Job& job = *up;
    if (job.spec.deadline_seconds <= 0) continue;
    if (job.state != JobState::Queued && job.state != JobState::Preempted) {
      continue;
    }
    const AdmissionDecision d = requote_locked(job, alive);
    if (!d.admitted) {
      shed_locked(job, "load-shed after device loss: " + d.reason);
    } else if (job.stats.total_seconds + d.predicted_seconds >
               job.spec.deadline_seconds) {
      shed_locked(job,
                  "load-shed after device loss: " +
                      std::to_string(job.stats.total_seconds +
                                     d.predicted_seconds) +
                      "s predicted on " + std::to_string(alive) +
                      " surviving device(s) exceeds the " +
                      std::to_string(job.spec.deadline_seconds) + "s deadline");
    } else {
      job.predicted_seconds = d.predicted_seconds;
      job.predicted_peak_bytes = d.predicted_peak_bytes;
    }
  }
}

void Scheduler::migrate_locked(Job& job, const std::string& failure) {
  const int alive = alive_devices_locked();
  if (alive == 0) {
    job.state = JobState::Failed;
    job.failure = failure + " (no surviving devices to migrate to)";
    counter("serve.jobs_failed").increment();
    return;
  }
  const AdmissionDecision d = requote_locked(job, alive);
  if (!d.admitted) {
    shed_locked(job, "load-shed after device loss: " + d.reason);
    return;
  }
  if (job.spec.deadline_seconds > 0 &&
      job.stats.total_seconds + d.predicted_seconds >
          job.spec.deadline_seconds) {
    shed_locked(job,
                "load-shed after device loss: remaining work no longer fits "
                "the deadline on " +
                    std::to_string(alive) + " surviving device(s)");
    return;
  }
  // Checkpoint-driven migration: requeue from the latest checkpoint. Not a
  // retry — the job did nothing wrong, its device did.
  job.state = JobState::Queued;
  job.preempt_requested = false;
  job.predicted_seconds = d.predicted_seconds;
  job.predicted_peak_bytes = d.predicted_peak_bytes;
  job.failure = failure;
  ++job.migrations;
  ++migrate_events_;
  counter("serve.jobs_migrated").increment();
  if (job.gang && job.has_checkpoint &&
      job.checkpoint.leaves > job.checkpoint.units_done) {
    // Leaf re-hosting accounting: the leaves not yet factored re-plan onto
    // the survivors when the gang resumes.
    counter("serve.tsqr_leaves_rehosted")
        .add(job.checkpoint.leaves - job.checkpoint.units_done);
  }
  job.ready_sim = sim_now_locked();
}

int Scheduler::watchdog_tripped_locked(Job& job) {
  if (cfg_.watchdog_timeout <= 0 || job.watch_from.empty()) return -1;
  const auto scan = [&](int device, size_t& from) {
    const auto& events =
        devices_[static_cast<size_t>(device)]->trace().events();
    for (size_t i = from; i < events.size(); ++i) {
      if (events[i].end - events[i].start > cfg_.watchdog_timeout) {
        from = i + 1;
        return true;
      }
    }
    from = events.size();
    return false;
  };
  if (job.gang) {
    for (size_t g = 0; g < job.gang_devices.size(); ++g) {
      if (scan(job.gang_devices[g], job.watch_from[g])) {
        return job.gang_devices[g];
      }
    }
    return -1;
  }
  return scan(job.last_device, job.watch_from[0]) ? job.last_device : -1;
}

void Scheduler::maybe_preempt_locked() {
  if (!cfg_.preemption) return;
  Job* top = pick_locked();
  if (top == nullptr) return;
  if (top->gang) {
    // A gang needs the whole fleet, so even one lower-priority running job
    // blocks it: ask every strictly-lower-priority running job (possibly a
    // running gang) to yield at its next checkpoint. Equal-or-higher
    // priority work finishes first and the drain completes naturally.
    for (const auto& up : jobs_) {
      Job& job = *up;
      if (job.state != JobState::Running || job.preempt_requested) continue;
      if (job.spec.priority >= top->spec.priority) continue;
      job.preempt_requested = true;
    }
    return;
  }
  if (running_ < cfg_.devices) return; // an idle device will take it
  // Victim: a running job of strictly lower priority, preferring the one
  // with the most columns still to factor (least completed work thrown
  // away, and — since its progress is bounded by the fleet's — its next
  // checkpoint cannot be its last, so the yield actually happens).
  Job* victim = nullptr;
  index_t victim_remaining = 0;
  for (const auto& up : jobs_) {
    Job& job = *up;
    if (job.state != JobState::Running || job.preempt_requested) continue;
    if (job.spec.priority >= top->spec.priority) continue;
    const index_t done = job.has_checkpoint ? job.checkpoint.columns_done : 0;
    const index_t remaining = job.spec.n - done;
    if (victim == nullptr || remaining > victim_remaining) {
      victim = &job;
      victim_remaining = remaining;
    }
  }
  if (victim != nullptr) victim->preempt_requested = true;
}

void Scheduler::on_unit_completed(Job& job, const qr::Checkpoint& cp) {
  // Copy the (possibly large, Real-mode) snapshot outside the lock; the
  // sink contract requires a copy anyway, the driver reuses its buffers.
  qr::Checkpoint copy = cp;
  bool unwind = false;
  int wd = -1;
  if (job.gang) {
    // The gang owns every device, so there is no concurrent activity to
    // order against: publish all the availability bounds and act at once
    // (waiting on may_act here would deadlock — the "other" devices are
    // this very job's).
    std::unique_lock<std::mutex> lk(mutex_);
    for (int e = 0; e < cfg_.devices; ++e) {
      const auto eu = static_cast<size_t>(e);
      const double t =
          qr::stats_from_trace(devices_[eu]->trace(), 0, 0).last_end;
      device_avail_[eu] = std::max(device_avail_[eu], t);
    }
    job.checkpoint = std::move(copy);
    job.has_checkpoint = true;
    ++fleet_units_;
    release_arrivals_locked();
    maybe_preempt_locked();
    // tsqr checkpoints are per-leaf (columns_done == 0 until the driver
    // returns), so a requested preemption always unwinds: the reduction
    // tree and reconstruction sweep still lie ahead.
    unwind = job.preempt_requested;
    wd = watchdog_tripped_locked(job);
    lk.unlock();
    counter("serve.units_completed").increment();
    cv_.notify_all();
    // A watchdog trip outranks a preemption: the attempt must unwind as a
    // device failure, not park as resumable-by-priority.
    if (wd >= 0) throw WatchdogTrip{wd};
    if (unwind) throw PreemptRequest{};
    return;
  }
  {
    std::unique_lock<std::mutex> lk(mutex_);
    const int d = job.last_device;
    const auto du = static_cast<size_t>(d);
    // The driver synchronized before checkpointing, so the trace end is
    // this device's simulated "now". Publish the new bound first (it lets
    // devices waiting on us proceed), then wait for our turn in global
    // simulated-time order before acting on the event.
    const double t = qr::stats_from_trace(devices_[du]->trace(), 0, 0).last_end;
    device_avail_[du] = std::max(device_avail_[du], t);
    job.checkpoint = std::move(copy);
    job.has_checkpoint = true;
    cv_.notify_all();
    while (!may_act_locked(d, device_avail_[du])) cv_.wait(lk);
    ++fleet_units_;
    release_arrivals_locked();
    maybe_preempt_locked();
    // Never yield on the final checkpoint: the factorization is complete,
    // preempting would only discard a finished job.
    unwind = job.preempt_requested && cp.columns_done < cp.n;
    wd = watchdog_tripped_locked(job);
  }
  counter("serve.units_completed").increment();
  cv_.notify_all();
  if (wd >= 0) throw WatchdogTrip{wd};
  if (unwind) throw PreemptRequest{};
}

void Scheduler::worker(int device_index) {
  const auto du = static_cast<size_t>(device_index);
  for (;;) {
    Job* job = nullptr;
    std::vector<Job*> batch;
    bool fused = false;
    {
      std::unique_lock<std::mutex> lk(mutex_);
      for (;;) {
        // A dead device never hosts work again; its worker retires. The
        // surviving workers keep draining the queue (including whatever
        // migrated off this device).
        if (device_health_[du] == DeviceHealth::Dead) return;
        release_arrivals_locked();
        Job* candidate = dispatchable_locked();
        if (candidate != nullptr &&
            may_act_locked(device_index, device_avail_[du])) {
          job = candidate;
          break;
        }
        if (!work_pending_locked()) return;
        if (candidate == nullptr && running_ == 0) {
          // Nothing running, nothing dispatchable, but jobs pending: the
          // only work left is behind arrival gates that can no longer open
          // (no units will complete). Force the earliest gate so the batch
          // always drains.
          if (force_earliest_arrival_locked()) continue;
        }
        cv_.wait(lk);
      }
      batch.push_back(job);
      if (!job->gang && job->spec.algorithm == "blocking" &&
          job->spec.deadline_seconds <= 0 && !job->spec.options.abft &&
          cfg_.max_fused_jobs > 1) {
        // Batched small-QR coalescing: claim further ready jobs identical
        // to the primary (shape, blocksize, precision, panel options,
        // checkpoint position — run_fused_batch's fusion contract) and
        // dispatch them as ONE block-diagonal batched node program, paying
        // each round's fixed per-op latencies once instead of once per
        // job. Same guards as colocation: deadline-free members only, the
        // summed predicted peaks must fit the admission budget, and only
        // when the ready queue outnumbers the idle devices. ABFT jobs
        // cannot fuse (the batched GEMM carries no per-job checksum).
        int ready_jobs = 0;
        for (const auto& up : jobs_) {
          const Job& j = *up;
          if ((j.state == JobState::Queued && j.arrived) ||
              j.state == JobState::Preempted) {
            ++ready_jobs;
          }
        }
        int idle_devices = 0;
        for (const char busy : device_busy_) idle_devices += busy == 0;
        int surplus = ready_jobs - idle_devices;
        const auto budget = static_cast<bytes_t>(
            cfg_.admission_memory_fraction *
            static_cast<double>(cfg_.spec.memory_capacity));
        bytes_t used = job->predicted_peak_bytes;
        const index_t units0 =
            job->has_checkpoint ? job->checkpoint.units_done : 0;
        for (const auto& up : jobs_) {
          if (static_cast<int>(batch.size()) >= cfg_.max_fused_jobs ||
              surplus <= 0) {
            break;
          }
          Job& extra = *up;
          if (&extra == job || extra.spec.algorithm != "blocking") continue;
          if (extra.spec.deadline_seconds > 0 || extra.spec.options.abft) {
            continue;
          }
          const bool ready =
              (extra.state == JobState::Queued && extra.arrived) ||
              extra.state == JobState::Preempted;
          if (!ready) continue;
          if (extra.spec.m != job->spec.m || extra.spec.n != job->spec.n ||
              extra.blocksize != job->blocksize ||
              extra.spec.precision != job->spec.precision ||
              extra.spec.options.panel_algorithm !=
                  job->spec.options.panel_algorithm ||
              extra.spec.options.panel_base != job->spec.options.panel_base) {
            continue;
          }
          const index_t eunits =
              extra.has_checkpoint ? extra.checkpoint.units_done : 0;
          if (eunits != units0) continue;
          if (used + extra.predicted_peak_bytes > budget) continue;
          used += extra.predicted_peak_bytes;
          --surplus;
          batch.push_back(&extra);
        }
        fused = batch.size() > 1;
      }
      if (!fused && !job->gang &&
          colocatable_algorithm(job->spec.algorithm) &&
          job->spec.deadline_seconds <= 0 && cfg_.max_colocated_jobs > 1) {
        // DAG multi-tenancy: claim further ready single-device jobs
        // (tiled, blocking, or left — mixed freely) for the same device
        // while their summed predicted peaks fit the admission budget.
        // They run as one task graph (run_batch), so they must share the
        // primary's precision (the graph-level knobs come from one options
        // set). Only pack when the queue outnumbers the idle devices —
        // with a free device per ready job, exclusive ownership is
        // strictly faster — and leave deadline jobs alone (their admission
        // prediction assumed a dedicated device).
        int ready_jobs = 0;
        for (const auto& up : jobs_) {
          const Job& j = *up;
          if ((j.state == JobState::Queued && j.arrived) ||
              j.state == JobState::Preempted) {
            ++ready_jobs;
          }
        }
        int idle_devices = 0;
        for (const char busy : device_busy_) idle_devices += busy == 0;
        int surplus = ready_jobs - idle_devices;
        const auto budget = static_cast<bytes_t>(
            cfg_.admission_memory_fraction *
            static_cast<double>(cfg_.spec.memory_capacity));
        bytes_t used = job->predicted_peak_bytes;
        for (const auto& up : jobs_) {
          if (static_cast<int>(batch.size()) >= cfg_.max_colocated_jobs ||
              surplus <= 0) {
            break;
          }
          Job& extra = *up;
          if (&extra == job || !colocatable_algorithm(extra.spec.algorithm)) {
            continue;
          }
          if (extra.spec.deadline_seconds > 0) continue;
          const bool ready =
              (extra.state == JobState::Queued && extra.arrived) ||
              extra.state == JobState::Preempted;
          if (!ready || extra.spec.precision != job->spec.precision) continue;
          if (used + extra.predicted_peak_bytes > budget) continue;
          used += extra.predicted_peak_bytes;
          --surplus;
          batch.push_back(&extra);
        }
      }
      for (Job* member : batch) {
        member->state = JobState::Running;
        member->preempt_requested = false;
        ++member->attempts;
        member->last_device = device_index;
        // Exact simulated queue wait of this episode: the dispatching
        // device's availability bound is the dispatch instant. Recorded
        // exactly (FleetReport percentiles) and quantized into the live
        // power-of-two-bucket histogram.
        const double waited =
            std::max(0.0, device_avail_[du] - member->ready_sim);
        member->queue_wait_seconds += waited;
        queue_waits_.push_back(waited);
        telemetry::MetricsRegistry::global()
            .histogram("serve.queue_wait_us")
            .observe(static_cast<std::int64_t>(waited * 1e6));
      }
      if (job->gang) {
        // Atomic acquisition of the surviving fleet: dispatchable_locked
        // only returned the gang with every device idle, so marking them
        // all busy under this lock cannot race another dispatch. Dead
        // devices are excluded — a re-planned gang runs on the survivors.
        gang_active_ = true;
        job->gang_devices.clear();
        for (int e = 0; e < cfg_.devices; ++e) {
          if (device_health_[static_cast<size_t>(e)] == DeviceHealth::Dead) {
            continue;
          }
          job->gang_devices.push_back(e);
          device_busy_[static_cast<size_t>(e)] = 1;
        }
        running_ += static_cast<int>(job->gang_devices.size());
      } else {
        ++running_;
        device_busy_[du] = 1;
      }
      cv_.notify_all();
    }
    if (job->gang) {
      run_gang_attempt(*job);
    } else if (fused) {
      run_fused_attempt(device_index, batch);
    } else if (batch.size() > 1) {
      run_colocated_attempt(device_index, batch);
    } else {
      run_attempt(device_index, *job);
    }
  }
}

void Scheduler::run_attempt(int device_index, Job& job) {
  sim::Device& dev = *devices_[static_cast<size_t>(device_index)];
  const size_t window = dev.trace().size();
  PreemptSink sink(*this, job);

  qr::QrOptions opts = job.spec.options;
  opts.blocksize = job.blocksize;
  opts.precision = job.spec.precision;
  opts.checkpoint_sink = &sink;
  opts.checkpoint_every = cfg_.checkpoint_every;
  opts.resume_units = 0;

  sim::HostMutRef a = job.spec.a.data != nullptr
                          ? job.spec.a
                          : sim::HostMutRef::phantom(job.spec.m, job.spec.n);
  sim::HostMutRef r = job.spec.r.data != nullptr
                          ? job.spec.r
                          : sim::HostMutRef::phantom(job.spec.n, job.spec.n);

  // Every attempt — including the first — starts from the job's latest
  // consistent state via qr::resume, so preemption resumes and fault
  // retries share one path. The unit-0 "checkpoint" snapshots the pristine
  // inputs: a Real-mode retry must not re-factor a half-mutated A.
  {
    std::lock_guard<std::mutex> lk(mutex_);
    if (!job.has_checkpoint) {
      qr::Checkpoint cp0;
      cp0.driver = job.spec.algorithm;
      cp0.m = job.spec.m;
      cp0.n = job.spec.n;
      cp0.blocksize = job.blocksize;
      cp0.columns_done = 0;
      cp0.units_done = 0;
      cp0.a = snapshot_host(a);
      cp0.r = snapshot_host(r);
      job.checkpoint = std::move(cp0);
      job.has_checkpoint = true;
    }
    job.watch_from.assign(1, window);
  }

  try {
    qr::Checkpoint start;
    {
      std::lock_guard<std::mutex> lk(mutex_);
      start = job.checkpoint;
    }
    sim::TraceSpan span(dev, "serve.job " + job.spec.name + " attempt " +
                                 std::to_string(job.attempts));
    qr::resume(qr::QrProblem{{&dev}, a, r, qr::Algorithm::Recursive, opts},
               start);
    finish_attempt(job, window, device_index, JobState::Completed, "",
                   AttemptOutcome::Clean);
  } catch (const PreemptRequest&) {
    // The sink threw right after a checkpoint write, which had already
    // synchronized the device; RAII unwound every driver allocation.
    dev.synchronize();
    finish_attempt(job, window, device_index, JobState::Preempted, "",
                   AttemptOutcome::Clean);
  } catch (const WatchdogTrip&) {
    dev.synchronize();
    const bool retry = job.retries < cfg_.max_job_retries;
    finish_attempt(job, window, device_index,
                   retry ? JobState::Queued : JobState::Failed,
                   "watchdog: an operation exceeded the " +
                       std::to_string(cfg_.watchdog_timeout) +
                       "s simulated timeout",
                   AttemptOutcome::DeviceFailure);
  } catch (const Error& e) {
    // Dead-device RAII contract: free/synchronize stay usable after a
    // fatal fault, so this unwind leaks nothing even on a lost device.
    dev.synchronize();
    if (dev.dead()) {
      finish_attempt(job, window, device_index, JobState::Queued, e.what(),
                     AttemptOutcome::DeviceLoss);
    } else {
      const bool retry = job.retries < cfg_.max_job_retries;
      finish_attempt(job, window, device_index,
                     retry ? JobState::Queued : JobState::Failed, e.what(),
                     AttemptOutcome::DeviceFailure);
    }
  }
}

void Scheduler::finish_attempt(Job& job, size_t window, int device_index,
                               JobState state, const std::string& failure,
                               AttemptOutcome outcome) {
  const sim::Device& dev = *devices_[static_cast<size_t>(device_index)];
  {
    std::lock_guard<std::mutex> lk(mutex_);
    const qr::QrStats attempt =
        qr::stats_from_trace(dev.trace(), window, dev.memory_peak());
    accumulate_stats(job.stats, attempt);
    const auto du = static_cast<size_t>(device_index);
    if (attempt.events > 0) {
      device_avail_[du] = std::max(device_avail_[du], attempt.last_end);
    }
    device_busy_[du] = 0;
    --running_;
    bool newly_dead = false;
    switch (outcome) {
    case AttemptOutcome::DeviceLoss:
      newly_dead = declare_dead_locked(device_index);
      break;
    case AttemptOutcome::DeviceFailure:
      newly_dead = note_device_failure_locked(device_index);
      break;
    case AttemptOutcome::Clean:
      note_device_success_locked(device_index);
      break;
    }
    if (newly_dead && state != JobState::Completed &&
        state != JobState::Preempted) {
      // The device died under this job: migrate (re-quote + requeue from
      // the latest checkpoint), not a retry.
      migrate_locked(job, failure);
    } else {
      record_outcome_locked(job, state, failure);
    }
  }
  cv_.notify_all();
}

void Scheduler::run_colocated_attempt(int device_index,
                                      const std::vector<Job*>& batch) {
  sim::Device& dev = *devices_[static_cast<size_t>(device_index)];
  const size_t window = dev.trace().size();

  // Per-job sinks: each member checkpoints (and can be preempted) under
  // its own identity even though all of them share one task graph.
  std::vector<std::unique_ptr<PreemptSink>> sinks;
  std::vector<qr::detail::BatchJob> bjobs;
  sinks.reserve(batch.size());
  bjobs.reserve(batch.size());
  std::string names;
  for (Job* member : batch) {
    Job& job = *member;
    sim::HostMutRef a =
        job.spec.a.data != nullptr
            ? job.spec.a
            : sim::HostMutRef::phantom(job.spec.m, job.spec.n);
    sim::HostMutRef r =
        job.spec.r.data != nullptr
            ? job.spec.r
            : sim::HostMutRef::phantom(job.spec.n, job.spec.n);
    qr::Checkpoint start;
    {
      std::lock_guard<std::mutex> lk(mutex_);
      if (!job.has_checkpoint) {
        qr::Checkpoint cp0;
        cp0.driver = job.spec.algorithm;
        cp0.m = job.spec.m;
        cp0.n = job.spec.n;
        cp0.blocksize = job.blocksize;
        cp0.columns_done = 0;
        cp0.units_done = 0;
        cp0.a = snapshot_host(a);
        cp0.r = snapshot_host(r);
        job.checkpoint = std::move(cp0);
        job.has_checkpoint = true;
      }
      job.watch_from.assign(1, window);
      start = job.checkpoint;
    }
    // run_batch expects restored host data + resume_units (the batch
    // equivalent of what qr::resume does for a solo job).
    if (a.data != nullptr) {
      restore_host(a, start.a);
      restore_host(r, start.r);
    }
    sinks.push_back(std::make_unique<PreemptSink>(*this, job));
    qr::QrOptions opts = job.spec.options;
    opts.blocksize = job.blocksize;
    opts.precision = job.spec.precision;
    opts.checkpoint_sink = sinks.back().get();
    opts.checkpoint_every = cfg_.checkpoint_every;
    opts.resume_units = start.units_done;
    bjobs.push_back(qr::detail::BatchJob{
        job.spec.algorithm, a, r, opts,
        "j" + std::to_string(job.id) + "."});
    names += (names.empty() ? "" : "+") + job.spec.name;
  }

  try {
    sim::TraceSpan span(dev, "serve.batch " + names);
    qr::detail::run_batch(dev, bjobs);
    finish_colocated_attempt(batch, window, device_index,
                             JobState::Completed, "", AttemptOutcome::Clean);
  } catch (const PreemptRequest&) {
    // One member's sink threw at a checkpoint boundary; the whole graph
    // unwound. Every member requeues from its own latest checkpoint — a
    // member that had already finished resumes into an immediate no-op.
    dev.synchronize();
    finish_colocated_attempt(batch, window, device_index,
                             JobState::Preempted, "", AttemptOutcome::Clean);
  } catch (const WatchdogTrip&) {
    dev.synchronize();
    finish_colocated_attempt(batch, window, device_index, JobState::Queued,
                             "watchdog: an operation exceeded the " +
                                 std::to_string(cfg_.watchdog_timeout) +
                                 "s simulated timeout",
                             AttemptOutcome::DeviceFailure);
  } catch (const Error& e) {
    dev.synchronize();
    finish_colocated_attempt(batch, window, device_index, JobState::Queued,
                             e.what(),
                             dev.dead() ? AttemptOutcome::DeviceLoss
                                        : AttemptOutcome::DeviceFailure);
  }
}

void Scheduler::finish_colocated_attempt(const std::vector<Job*>& batch,
                                         size_t window, int device_index,
                                         JobState state,
                                         const std::string& failure,
                                         AttemptOutcome outcome) {
  const sim::Device& dev = *devices_[static_cast<size_t>(device_index)];
  {
    std::lock_guard<std::mutex> lk(mutex_);
    const auto du = static_cast<size_t>(device_index);
    const qr::QrStats whole =
        qr::stats_from_trace(dev.trace(), window, dev.memory_peak());
    if (whole.events > 0) {
      device_avail_[du] = std::max(device_avail_[du], whole.last_end);
    }
    device_busy_[du] = 0;
    --running_;
    bool newly_dead = false;
    switch (outcome) {
    case AttemptOutcome::DeviceLoss:
      newly_dead = declare_dead_locked(device_index);
      break;
    case AttemptOutcome::DeviceFailure:
      newly_dead = note_device_failure_locked(device_index);
      break;
    case AttemptOutcome::Clean:
      note_device_success_locked(device_index);
      break;
    }
    for (Job* member : batch) {
      // Per-job attribution: the shared window filtered by the member's
      // "j<id>." op-name prefix.
      accumulate_stats(member->stats,
                       qr::stats_from_trace(
                           dev.trace(), window, dev.memory_peak(),
                           "j" + std::to_string(member->id) + "."));
      if (newly_dead && state != JobState::Completed &&
          state != JobState::Preempted) {
        // The shared device died: every member migrates from its own
        // latest checkpoint (no retry charged).
        migrate_locked(*member, failure);
        continue;
      }
      JobState member_state = state;
      if (state == JobState::Queued &&
          member->retries >= cfg_.max_job_retries) {
        member_state = JobState::Failed;
      }
      record_outcome_locked(*member, member_state, failure);
    }
  }
  cv_.notify_all();
}

void Scheduler::run_fused_attempt(int device_index,
                                  const std::vector<Job*>& batch) {
  sim::Device& dev = *devices_[static_cast<size_t>(device_index)];
  const size_t window = dev.trace().size();

  // Per-job sinks, exactly as in the colocated path: each member
  // checkpoints (and can be preempted) under its own identity even though
  // every fused round is one shared batched op per engine.
  std::vector<std::unique_ptr<PreemptSink>> sinks;
  std::vector<qr::detail::BatchJob> bjobs;
  sinks.reserve(batch.size());
  bjobs.reserve(batch.size());
  std::string names;
  for (Job* member : batch) {
    Job& job = *member;
    sim::HostMutRef a =
        job.spec.a.data != nullptr
            ? job.spec.a
            : sim::HostMutRef::phantom(job.spec.m, job.spec.n);
    sim::HostMutRef r =
        job.spec.r.data != nullptr
            ? job.spec.r
            : sim::HostMutRef::phantom(job.spec.n, job.spec.n);
    qr::Checkpoint start;
    {
      std::lock_guard<std::mutex> lk(mutex_);
      if (!job.has_checkpoint) {
        qr::Checkpoint cp0;
        cp0.driver = job.spec.algorithm;
        cp0.m = job.spec.m;
        cp0.n = job.spec.n;
        cp0.blocksize = job.blocksize;
        cp0.columns_done = 0;
        cp0.units_done = 0;
        cp0.a = snapshot_host(a);
        cp0.r = snapshot_host(r);
        job.checkpoint = std::move(cp0);
        job.has_checkpoint = true;
      }
      job.watch_from.assign(1, window);
      start = job.checkpoint;
    }
    // run_fused_batch expects restored host data + resume_units; the
    // coalescer only fused members at the same checkpoint position, so
    // every member's resume_units agree (the fusion contract).
    if (a.data != nullptr) {
      restore_host(a, start.a);
      restore_host(r, start.r);
    }
    sinks.push_back(std::make_unique<PreemptSink>(*this, job));
    qr::QrOptions opts = job.spec.options;
    opts.blocksize = job.blocksize;
    opts.precision = job.spec.precision;
    opts.checkpoint_sink = sinks.back().get();
    opts.checkpoint_every = cfg_.checkpoint_every;
    opts.resume_units = start.units_done;
    bjobs.push_back(qr::detail::BatchJob{
        job.spec.algorithm, a, r, opts,
        "j" + std::to_string(job.id) + "."});
    names += (names.empty() ? "" : "+") + job.spec.name;
  }

  try {
    sim::TraceSpan span(dev, "serve.fused " + names);
    qr::detail::run_fused_batch(dev, bjobs);
    finish_fused_attempt(batch, window, device_index, JobState::Completed,
                         "", AttemptOutcome::Clean);
  } catch (const PreemptRequest&) {
    // One member's sink threw at a fused round boundary; the whole batch
    // unwound. Every member requeues from its own checkpoint and resumes
    // solo or in a different fusion — bit-identical either way.
    dev.synchronize();
    finish_fused_attempt(batch, window, device_index, JobState::Preempted,
                         "", AttemptOutcome::Clean);
  } catch (const WatchdogTrip&) {
    dev.synchronize();
    finish_fused_attempt(batch, window, device_index, JobState::Queued,
                         "watchdog: an operation exceeded the " +
                             std::to_string(cfg_.watchdog_timeout) +
                             "s simulated timeout",
                         AttemptOutcome::DeviceFailure);
  } catch (const Error& e) {
    dev.synchronize();
    finish_fused_attempt(batch, window, device_index, JobState::Queued,
                         e.what(),
                         dev.dead() ? AttemptOutcome::DeviceLoss
                                    : AttemptOutcome::DeviceFailure);
  }
}

void Scheduler::finish_fused_attempt(const std::vector<Job*>& batch,
                                     size_t window, int device_index,
                                     JobState state,
                                     const std::string& failure,
                                     AttemptOutcome outcome) {
  const sim::Device& dev = *devices_[static_cast<size_t>(device_index)];
  {
    std::lock_guard<std::mutex> lk(mutex_);
    const auto du = static_cast<size_t>(device_index);
    const qr::QrStats whole =
        qr::stats_from_trace(dev.trace(), window, dev.memory_peak());
    if (whole.events > 0) {
      device_avail_[du] = std::max(device_avail_[du], whole.last_end);
    }
    device_busy_[du] = 0;
    --running_;
    bool newly_dead = false;
    switch (outcome) {
    case AttemptOutcome::DeviceLoss:
      newly_dead = declare_dead_locked(device_index);
      break;
    case AttemptOutcome::DeviceFailure:
      newly_dead = note_device_failure_locked(device_index);
      break;
    case AttemptOutcome::Clean:
      note_device_success_locked(device_index);
      break;
    }
    const qr::QrStats per =
        split_fused_stats(whole, static_cast<int>(batch.size()));
    for (Job* member : batch) {
      accumulate_stats(member->stats, per);
      if (newly_dead && state != JobState::Completed &&
          state != JobState::Preempted) {
        migrate_locked(*member, failure);
        continue;
      }
      JobState member_state = state;
      if (state == JobState::Queued &&
          member->retries >= cfg_.max_job_retries) {
        member_state = JobState::Failed;
      }
      record_outcome_locked(*member, member_state, failure);
    }
  }
  cv_.notify_all();
}

void Scheduler::record_outcome_locked(Job& job, JobState state,
                                      const std::string& failure) {
  job.state = state;
  job.preempt_requested = false;
  switch (state) {
  case JobState::Completed:
    counter("serve.jobs_completed").increment();
    break;
  case JobState::Preempted:
    ++job.preemptions;
    ++preempt_events_;
    counter("serve.jobs_preempted").increment();
    job.ready_sim = sim_now_locked();
    break;
  case JobState::Queued: // fault retry
    ++job.retries;
    ++retry_events_;
    counter("serve.job_retries").increment();
    job.failure = failure; // latest error; cleared on completion
    job.ready_sim = sim_now_locked();
    break;
  default:
    job.failure = failure;
    counter("serve.jobs_failed").increment();
    break;
  }
  if (state == JobState::Completed) job.failure.clear();
}

void Scheduler::run_gang_attempt(Job& job) {
  // The gang runs on the devices acquired at dispatch (the survivors): a
  // re-planned attempt after a device loss never touches the dead member.
  std::vector<sim::Device*> fleet;
  std::vector<size_t> windows;
  std::vector<int> gang;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    gang = job.gang_devices;
    fleet.reserve(gang.size());
    windows.reserve(gang.size());
    for (const int d : gang) {
      fleet.push_back(devices_[static_cast<size_t>(d)].get());
      windows.push_back(fleet.back()->trace().size());
    }
    job.watch_from = windows;
  }
  PreemptSink sink(*this, job);

  qr::QrOptions opts = job.spec.options;
  opts.blocksize = job.blocksize;
  opts.precision = job.spec.precision;
  opts.checkpoint_sink = &sink;
  opts.checkpoint_every = cfg_.checkpoint_every;
  opts.resume_units = 0;

  sim::HostMutRef a = job.spec.a.data != nullptr
                          ? job.spec.a
                          : sim::HostMutRef::phantom(job.spec.m, job.spec.n);
  sim::HostMutRef r = job.spec.r.data != nullptr
                          ? job.spec.r
                          : sim::HostMutRef::phantom(job.spec.n, job.spec.n);

  {
    std::lock_guard<std::mutex> lk(mutex_);
    if (!job.has_checkpoint) {
      qr::Checkpoint cp0;
      cp0.driver = job.spec.algorithm;
      cp0.m = job.spec.m;
      cp0.n = job.spec.n;
      cp0.blocksize = job.blocksize;
      cp0.columns_done = 0;
      cp0.units_done = 0;
      cp0.a = snapshot_host(a);
      cp0.r = snapshot_host(r);
      job.checkpoint = std::move(cp0);
      job.has_checkpoint = true;
    }
  }

  try {
    qr::Checkpoint start;
    {
      std::lock_guard<std::mutex> lk(mutex_);
      start = job.checkpoint;
    }
    std::vector<std::unique_ptr<sim::TraceSpan>> spans;
    spans.reserve(fleet.size());
    for (sim::Device* dev : fleet) {
      spans.push_back(std::make_unique<sim::TraceSpan>(
          *dev, "serve.job " + job.spec.name + " attempt " +
                    std::to_string(job.attempts)));
    }
    qr::resume(qr::QrProblem{fleet, a, r, qr::Algorithm::Tsqr, opts}, start);
    spans.clear();
    finish_gang_attempt(job, windows, JobState::Completed, "",
                        AttemptOutcome::Clean, -1);
  } catch (const PreemptRequest&) {
    sim::synchronize_all(fleet);
    finish_gang_attempt(job, windows, JobState::Preempted, "",
                        AttemptOutcome::Clean, -1);
  } catch (const WatchdogTrip& w) {
    sim::synchronize_all(fleet);
    const bool retry = job.retries < cfg_.max_job_retries;
    finish_gang_attempt(job, windows,
                        retry ? JobState::Queued : JobState::Failed,
                        "watchdog: an operation exceeded the " +
                            std::to_string(cfg_.watchdog_timeout) +
                            "s simulated timeout",
                        AttemptOutcome::DeviceFailure, w.device);
  } catch (const Error& e) {
    sim::synchronize_all(fleet);
    // Attribute the failure: a gang member whose device is dead makes this
    // a device loss; otherwise the error is unattributable (no strike).
    int lost = -1;
    for (size_t g = 0; g < fleet.size(); ++g) {
      if (fleet[g]->dead()) {
        lost = gang[g];
        break;
      }
    }
    if (lost >= 0) {
      finish_gang_attempt(job, windows, JobState::Queued, e.what(),
                          AttemptOutcome::DeviceLoss, lost);
    } else {
      const bool retry = job.retries < cfg_.max_job_retries;
      finish_gang_attempt(job, windows,
                          retry ? JobState::Queued : JobState::Failed,
                          e.what(), AttemptOutcome::DeviceFailure, -1);
    }
  }
}

void Scheduler::finish_gang_attempt(Job& job,
                                    const std::vector<size_t>& windows,
                                    JobState state,
                                    const std::string& failure,
                                    AttemptOutcome outcome,
                                    int failed_device) {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    std::vector<qr::QrStats> per_device;
    per_device.reserve(job.gang_devices.size());
    for (size_t g = 0; g < job.gang_devices.size(); ++g) {
      const auto d = static_cast<size_t>(job.gang_devices[g]);
      per_device.push_back(qr::stats_from_trace(
          devices_[d]->trace(), windows[g], devices_[d]->memory_peak()));
    }
    accumulate_stats(job.stats, qr::combine_device_stats(per_device));
    for (size_t g = 0; g < per_device.size(); ++g) {
      const auto d = static_cast<size_t>(job.gang_devices[g]);
      if (per_device[g].events > 0) {
        device_avail_[d] = std::max(device_avail_[d], per_device[g].last_end);
      }
      device_busy_[d] = 0;
    }
    running_ -= static_cast<int>(job.gang_devices.size());
    gang_active_ = false;
    bool newly_dead = false;
    switch (outcome) {
    case AttemptOutcome::DeviceLoss:
      newly_dead = declare_dead_locked(failed_device);
      break;
    case AttemptOutcome::DeviceFailure:
      // A gang failure without an attributable device strikes nobody.
      if (failed_device >= 0) {
        newly_dead = note_device_failure_locked(failed_device);
      }
      break;
    case AttemptOutcome::Clean:
      for (const int d : job.gang_devices) note_device_success_locked(d);
      break;
    }
    if (newly_dead && state != JobState::Completed &&
        state != JobState::Preempted) {
      // Gang re-planning: the checkpoint pins the leaf layout, so the
      // resumed gang on the survivors reproduces the clean result bit for
      // bit — only the dead member's unfinished leaves re-host.
      migrate_locked(job, failure);
    } else {
      record_outcome_locked(job, state, failure);
    }
  }
  cv_.notify_all();
}

FleetReport Scheduler::build_report() {
  FleetReport rep;
  rep.devices = cfg_.devices;
  for (const auto& dev : devices_) {
    rep.per_device.push_back(
        qr::stats_from_trace(dev->trace(), 0, dev->memory_peak()));
  }
  rep.fleet = qr::combine_device_stats(rep.per_device);
  rep.makespan_seconds = rep.fleet.total_seconds;
  rep.units_completed = fleet_units_;
  rep.jobs_preempted = preempt_events_;
  rep.job_retries = retry_events_;
  rep.devices_lost = devices_lost_;
  rep.jobs_migrated = migrate_events_;
  rep.jobs_shed = shed_events_;
  for (const DeviceHealth h : device_health_) {
    rep.device_health.emplace_back(to_string(h));
  }
  // Exact tail latency from the per-dispatch record (nearest-rank): the
  // telemetry histogram's power-of-two buckets would be off by up to 2x.
  rep.queue_waits = queue_waits_;
  if (!queue_waits_.empty()) {
    std::vector<double> sorted = queue_waits_;
    std::sort(sorted.begin(), sorted.end());
    const auto pct = [&sorted](double p) {
      const auto rank = static_cast<size_t>(
          std::ceil(p * static_cast<double>(sorted.size())));
      return sorted[std::max<size_t>(rank, 1) - 1];
    };
    rep.queue_wait_p50 = pct(0.50);
    rep.queue_wait_p95 = pct(0.95);
    rep.queue_wait_p99 = pct(0.99);
  }
  for (const auto& up : jobs_) {
    const Job& job = *up;
    JobReport jr;
    jr.id = job.id;
    jr.name = job.spec.name;
    jr.state = job.state;
    jr.priority = job.spec.priority;
    jr.algorithm = job.spec.algorithm;
    jr.m = job.spec.m;
    jr.n = job.spec.n;
    jr.blocksize = job.blocksize;
    jr.predicted_seconds = job.predicted_seconds;
    jr.predicted_peak_bytes = job.predicted_peak_bytes;
    jr.failure = job.failure;
    jr.attempts = job.attempts;
    jr.preemptions = job.preemptions;
    jr.retries = job.retries;
    jr.migrations = job.migrations;
    jr.last_device = job.last_device;
    jr.queue_wait_seconds = job.queue_wait_seconds;
    jr.deadline_met =
        job.spec.deadline_seconds <= 0 ||
        (job.state == JobState::Completed &&
         job.stats.total_seconds <= job.spec.deadline_seconds);
    jr.stats = job.stats;
    rep.jobs.push_back(std::move(jr));
    switch (job.state) {
    case JobState::Rejected: ++rep.jobs_rejected; break;
    case JobState::Completed:
      ++rep.jobs_admitted;
      ++rep.jobs_completed;
      break;
    case JobState::Failed:
      ++rep.jobs_admitted;
      ++rep.jobs_failed;
      break;
    default: ++rep.jobs_admitted; break;
    }
  }
  return rep;
}

} // namespace rocqr::serve
