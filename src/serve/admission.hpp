// Phantom-mode admission control for the QR service (docs/SERVING.md).
//
// Admission is a dry run, not a heuristic: the candidate job is simulated
// on a phantom replica of the fleet's device spec — through the exact
// driver, blocksize and checkpoint cadence the scheduler would use — so the
// predicted runtime and peak device bytes are the schedule the device would
// execute, not an estimate. Jobs that cannot fit (every blocksize OOMs, or
// the peak exceeds the configured memory fraction) or that already miss
// their deadline are rejected with the reason in the decision.
#pragma once

#include <string>

#include "serve/job.hpp"
#include "sim/spec.hpp"

namespace rocqr::serve {

/// The slice of the scheduler configuration admission must mirror.
struct AdmissionConfig {
  sim::DeviceSpec spec;
  /// Fleet size. Single-device jobs dry-run on one phantom replica; a
  /// gang-scheduled "tsqr" job dry-runs on a phantom replica of the whole
  /// fleet (same size, same link topology) so the quote covers the
  /// cross-device reduction tree.
  int devices = 1;
  /// Mirror of ServeConfig::shared_link: the tsqr dry run routes its
  /// stacked-R transfers through one SharedHostLink so the predicted
  /// makespan includes the contention.
  bool shared_link = false;
  /// Checkpoint cadence of the fleet's workers. The dry run installs the
  /// same cadence because each checkpoint synchronizes the device, which is
  /// part of the schedule being predicted.
  index_t checkpoint_every = 1;
  /// Admit only jobs whose predicted peak stays within this fraction of
  /// device memory (head-room policy; 1.0 = anything that fits). For tsqr
  /// the check is against the max *per-device* peak; the decision's
  /// predicted_peak_bytes quotes the fleet-wide sum.
  double memory_fraction = 1.0;
  bool paper_calibration = true;
};

/// Decides admission for `job` (job_id is left for the scheduler to fill).
/// Infeasible or malformed jobs come back rejected with a reason; this
/// function does not throw for per-job problems.
AdmissionDecision admit_job(const JobSpec& job, const AdmissionConfig& cfg);

namespace detail {

/// Dispatches to the OOC QR driver named by `algorithm` ("recursive",
/// "blocking", "left", or "tsqr" — the latter as a single-device fleet);
/// throws InvalidArgument for unknown names.
qr::QrStats run_driver(sim::Device& dev, const std::string& algorithm,
                       sim::HostMutRef a, sim::HostMutRef r,
                       const qr::QrOptions& opts);

/// True for the four driver names run_driver accepts.
bool known_algorithm(const std::string& algorithm);

} // namespace detail

} // namespace rocqr::serve
