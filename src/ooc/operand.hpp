// An OOC GEMM operand: either a host matrix to be streamed/staged in, or a
// matrix already resident on the device (the QR-level optimization of §4.2
// passes results of one BLAS call straight into the next).
#pragma once

#include "common/error.hpp"
#include "sim/device.hpp"

namespace rocqr::ooc {

class Operand {
 public:
  static Operand on_host(sim::HostConstRef ref) {
    Operand op;
    op.host_ = ref;
    return op;
  }

  /// `ready` (optional) marks when the resident contents become valid —
  /// record it on the stream that produced the matrix. Consumers of the
  /// operand wait on it, which is what lets one BLAS call's tail overlap the
  /// next call's head without racing (§4.2).
  static Operand on_device(const sim::DeviceMatrix& m, sim::Event ready = {}) {
    ROCQR_CHECK(m.valid(), "Operand::on_device: invalid device matrix");
    return on_device(sim::DeviceMatrixRef(m), ready);
  }

  /// Sub-block of a resident matrix (e.g. the L21 part of a combined LU
  /// panel).
  static Operand on_device(sim::DeviceMatrixRef ref, sim::Event ready = {}) {
    ROCQR_CHECK(ref.matrix.valid(), "Operand::on_device: invalid device ref");
    Operand op;
    op.resident_ = true;
    op.ref_ = ref;
    op.ready_ = ready;
    return op;
  }

  bool is_resident() const { return resident_; }
  sim::Event ready_event() const { return ready_; }
  sim::DeviceMatrixRef device_ref() const {
    ROCQR_CHECK(resident_, "Operand: not device-resident");
    return ref_;
  }
  const sim::HostConstRef& host() const {
    ROCQR_CHECK(!resident_, "Operand: not host-resident");
    return host_;
  }

  index_t rows() const { return resident_ ? ref_.rows : host_.rows; }
  index_t cols() const { return resident_ ? ref_.cols : host_.cols; }

 private:
  Operand() = default;
  sim::HostConstRef host_{};
  bool resident_ = false;
  sim::DeviceMatrixRef ref_{};
  sim::Event ready_{};
};

/// Sub-block helpers for host refs (column-major pointer arithmetic).
inline sim::HostConstRef host_block(const sim::HostConstRef& ref, index_t i0,
                                    index_t j0, index_t rows, index_t cols) {
  ROCQR_CHECK(i0 >= 0 && j0 >= 0 && rows >= 0 && cols >= 0 &&
                  i0 + rows <= ref.rows && j0 + cols <= ref.cols,
              "host_block: out of range");
  const float* p =
      ref.data == nullptr ? nullptr : ref.data + i0 + j0 * ref.ld;
  return sim::HostConstRef(p, rows, cols, ref.ld);
}

inline sim::HostMutRef host_block(const sim::HostMutRef& ref, index_t i0,
                                  index_t j0, index_t rows, index_t cols) {
  ROCQR_CHECK(i0 >= 0 && j0 >= 0 && rows >= 0 && cols >= 0 &&
                  i0 + rows <= ref.rows && j0 + cols <= ref.cols,
              "host_block: out of range");
  float* p = ref.data == nullptr ? nullptr : ref.data + i0 + j0 * ref.ld;
  return sim::HostMutRef(p, rows, cols, ref.ld);
}

} // namespace rocqr::ooc
