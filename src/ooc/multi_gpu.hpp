// Multi-GPU out-of-core GEMM — the §2.2 related-work regime (cuBLASXt,
// BLASX): one host matrix set, several devices, C partitioned by row blocks.
// Each device receives the full resident factor and streams its row share
// independently; with a SharedHostLink the devices contend for PCIe, which
// is what limits multi-GPU OOC scaling in practice.
#pragma once

#include <vector>

#include "ooc/gemm_engines.hpp"

namespace rocqr::ooc {

struct MultiGpuGemmResult {
  std::vector<OocGemmStats> per_device;
  /// Latest completion over all participating devices.
  sim_time_t makespan = 0;
};

/// C (m x n) := beta·C + alpha·op(A)·B across `devices` (cuBLASXt row-block
/// scheme): device d computes rows [d·m/G, (d+1)·m/G). B is moved to every
/// device (the replication cost cuBLASXt pays too); A and C row shares
/// stream per device. Synchronizes every device before returning.
MultiGpuGemmResult multi_gpu_outer_product(
    const std::vector<sim::Device*>& devices, sim::HostConstRef a,
    sim::HostConstRef b, sim::HostConstRef c_in, sim::HostMutRef c_out,
    const OocGemmOptions& opts);

} // namespace rocqr::ooc
