// Out-of-core "inner product" engines: C = Aᵀ·B (the R12 = Q1ᵀ·A2 step).
//
// Fault tolerance (docs/FAULTS.md): every host transfer goes through the
// bounded-backoff retry helpers, every GEMM through the opt-in ABFT check,
// and the whole engine body re-plans with a halved slab schedule on
// DeviceOutOfMemory. Device buffers are ScopedMatrix so an abandoned
// attempt cannot leak; all allocations happen before the first
// device-to-host write, which is what makes the re-plan sound (no host
// data has been modified when an OOM aborts the body).
#include <string>
#include <vector>

#include "common/error.hpp"
#include "ooc/engine_util.hpp"
#include "ooc/gemm_engines.hpp"
#include "ooc/resilience.hpp"
#include "sim/scoped_matrix.hpp"
#include "sim/trace_export.hpp"

namespace rocqr::ooc {

using blas::GemmPrecision;
using blas::Op;
using sim::Device;
using sim::DeviceMatrix;
using sim::Event;
using sim::HostMutRef;
using sim::ScopedMatrix;
using sim::StoragePrecision;

namespace {

OocGemmStats inner_product_recursive_impl(Device& dev, const Operand& a,
                                          const Operand& b, HostMutRef c,
                                          const OocGemmOptions& opts,
                                          DeviceMatrix* keep_c) {
  ROCQR_CHECK(!a.is_resident() && !b.is_resident(),
              "inner_product_recursive: streams both inputs from the host");
  const index_t kk = a.rows();
  const index_t m = a.cols();
  const index_t n = b.cols();
  ROCQR_CHECK(b.rows() == kk, "inner_product_recursive: k mismatch");
  ROCQR_CHECK(c.rows == m && c.cols == n,
              "inner_product_recursive: C shape mismatch");
  ROCQR_CHECK(m > 0 && n > 0 && kk > 0,
              "inner_product_recursive: empty operand");

  // Column panels of C: the unsplit case (one panel) is the paper's scheme
  // where the full accumulator is resident and both inputs stream exactly
  // once; small-memory devices split n and re-stream A per panel.
  const index_t panel_cols = opts.c_panel_cols > 0 ? opts.c_panel_cols : n;
  const auto panels = slab_partition(n, panel_cols);
  ROCQR_CHECK(keep_c == nullptr || panels.size() == 1,
              "inner_product_recursive: keep_c requires an unsplit C");

  const auto kslabs =
      slab_partition(kk, opts.blocksize, opts.ramp_up, opts.ramp_start);
  const index_t max_kw = max_slab_width(kslabs);
  const index_t max_pw = max_slab_width(panels);
  const int depth = detail::effective_depth(opts);

  const size_t window_begin = dev.trace().size();
  sim::TraceSpan span(dev, "inner_product_recursive");
  auto streams = detail::make_streams(dev);
  detail::wait_host_inputs(dev, streams.in, opts);

  // Streamed-input buffer pool (fp16 on device, like the LATER pipeline).
  std::vector<ScopedMatrix> buf_a;
  std::vector<ScopedMatrix> buf_b;
  buf_a.reserve(static_cast<size_t>(depth));
  buf_b.reserve(static_cast<size_t>(depth));
  for (int d = 0; d < depth; ++d) {
    buf_a.emplace_back(dev, max_kw, m, detail::input_storage(opts),
                       "inner_rec.A");
    buf_b.emplace_back(dev, max_kw, max_pw, detail::input_storage(opts),
                       "inner_rec.B");
  }
  // Accumulator pool: one buffer when C is unsplit, two cycling buffers when
  // n is split so panel p+1 can accumulate while panel p drains to the host.
  const int c_slots = panels.size() > 1 ? 2 : 1;
  std::vector<ScopedMatrix> buf_c;
  buf_c.reserve(static_cast<size_t>(c_slots));
  for (int d = 0; d < c_slots; ++d) {
    buf_c.emplace_back(dev, m, max_pw, StoragePrecision::FP32, "inner_rec.C");
  }

  std::vector<Event> gemm_done;  // per global step, guards input-slot reuse
  std::vector<Event> c_out_done; // per panel, guards accumulator-slot reuse
  std::vector<RegionEvent> output_regions;
  index_t global_step = 0;

  for (size_t p = 0; p < panels.size(); ++p) {
    const Slab panel = panels[p];
    const DeviceMatrix& cd = buf_c[p % static_cast<size_t>(c_slots)].get();
    // First gemm of this panel must not start before the accumulator slot's
    // previous contents were copied out (two-panels-ago with two slots).
    Event c_free{};
    if (p >= static_cast<size_t>(c_slots)) {
      c_free = c_out_done[p - static_cast<size_t>(c_slots)];
    }

    for (size_t s = 0; s < kslabs.size(); ++s) {
      const Slab kslab = kslabs[s];
      const size_t slot = static_cast<size_t>(global_step % depth);
      detail::count_slab_prefetch(global_step >= depth);
      if (global_step >= depth) {
        dev.wait_event(streams.in,
                       gemm_done[static_cast<size_t>(global_step - depth)]);
      }
      detail::copy_h2d_retry(
          dev, sim::DeviceMatrixRef(buf_a[slot].get(), 0, 0, kslab.width, m),
          host_block(a.host(), kslab.offset, 0, kslab.width, m), streams.in,
          "h2d A[" + std::to_string(s) + "]", opts);
      detail::sync_if(dev, opts);
      detail::copy_h2d_retry(
          dev,
          sim::DeviceMatrixRef(buf_b[slot].get(), 0, 0, kslab.width,
                               panel.width),
          host_block(b.host(), kslab.offset, panel.offset, kslab.width,
                     panel.width),
          streams.in, "h2d B[" + std::to_string(s) + "]", opts);
      detail::sync_if(dev, opts);

      Event moved_in = dev.create_event();
      dev.record_event(moved_in, streams.in);
      dev.wait_event(streams.comp, moved_in);
      if (s == 0 && c_free.valid()) dev.wait_event(streams.comp, c_free);
      // beta=0 on the panel's first slab: the accumulator slot may hold a
      // previous panel's values.
      detail::checked_gemm(
          dev, opts, Op::Trans, Op::NoTrans, 1.0f,
          sim::DeviceMatrixRef(buf_a[slot].get(), 0, 0, kslab.width, m),
          sim::DeviceMatrixRef(buf_b[slot].get(), 0, 0, kslab.width,
                               panel.width),
          s == 0 ? 0.0f : 1.0f,
          sim::DeviceMatrixRef(cd, 0, 0, m, panel.width), streams.comp,
          "gemm C+=A'B[" + std::to_string(s) + "]");
      detail::sync_if(dev, opts);

      Event g = dev.create_event();
      dev.record_event(g, streams.comp);
      gemm_done.push_back(g);
      ++global_step;
    }

    // Single move-out of the accumulated panel.
    dev.wait_event(streams.out, gemm_done.back());
    detail::copy_d2h_retry(dev,
                           host_block(c, 0, panel.offset, m, panel.width),
                           sim::DeviceMatrixRef(cd, 0, 0, m, panel.width),
                           streams.out, "d2h C panel " + std::to_string(p),
                           opts);
    detail::sync_if(dev, opts);
    Event out_ev = dev.create_event();
    dev.record_event(out_ev, streams.out);
    c_out_done.push_back(out_ev);
    output_regions.push_back(
        RegionEvent{Slab{0, m}, Slab{panel.offset, panel.width}, out_ev});
  }

  // Release streamed-input buffers; their last reader has been enqueued.
  for (auto& buf : buf_a) buf.reset();
  for (auto& buf : buf_b) buf.reset();
  if (keep_c != nullptr) {
    *keep_c = buf_c[0].release();
  } else {
    for (auto& buf : buf_c) buf.reset();
  }

  OocGemmStats stats;
  stats.summary = sim::summarize(dev.trace(), window_begin);
  stats.steps = global_step;
  stats.output_ready = std::move(output_regions);
  stats.done = c_out_done.back();
  stats.device_result_ready = gemm_done.back();
  stats.steady_gemm_rate = dev.model().gemm_rate(
      Op::Trans, m, panel_cols, opts.blocksize, opts.precision);
  stats.slab_h2d_seconds =
      dev.model().h2d_seconds(4 * opts.blocksize * m) +
      dev.model().h2d_seconds(4 * opts.blocksize * panel_cols);
  stats.slab_gemm_seconds = dev.model().gemm_seconds(
      Op::Trans, m, panel_cols, opts.blocksize, opts.precision);
  stats.slab_d2h_seconds = dev.model().d2h_seconds(4 * m * panel_cols);
  return stats;
}

OocGemmStats inner_product_blocking_impl(Device& dev, const Operand& a,
                                         const Operand& b, HostMutRef c,
                                         const OocGemmOptions& opts,
                                         DeviceMatrix* keep_c) {
  ROCQR_CHECK(!b.is_resident(),
              "inner_product_blocking: B streams from the host");
  const index_t kk = a.rows();
  const index_t m = a.cols();
  const index_t n = b.cols();
  ROCQR_CHECK(b.rows() == kk, "inner_product_blocking: k mismatch");
  ROCQR_CHECK(c.rows == m && c.cols == n,
              "inner_product_blocking: C shape mismatch");
  ROCQR_CHECK(m > 0 && n > 0 && kk > 0, "inner_product_blocking: empty operand");

  const auto slabs =
      slab_partition(n, opts.blocksize, opts.ramp_up, opts.ramp_start);
  const index_t max_w = max_slab_width(slabs);
  const int depth = detail::effective_depth(opts);

  const size_t window_begin = dev.trace().size();
  sim::TraceSpan span(dev, "inner_product_blocking");
  auto streams = detail::make_streams(dev);
  detail::wait_host_inputs(dev, streams.in, opts);

  // The panel Q is resident — either it already lives on the device (QR-level
  // optimization) or it is moved in once here.
  ScopedMatrix a_moved;
  sim::DeviceMatrixRef a_ref;
  Event a_ready{};
  if (a.is_resident()) {
    a_ref = a.device_ref();
    a_ready = a.ready_event();
  } else {
    a_moved = ScopedMatrix(dev, kk, m, detail::input_storage(opts),
                           "inner_blk.A");
    detail::copy_h2d_retry(dev, a_moved.get(), a.host(), streams.in,
                           "h2d A (panel)", opts);
    detail::sync_if(dev, opts);
    a_ready = dev.create_event();
    dev.record_event(a_ready, streams.in);
    a_ref = sim::DeviceMatrixRef(a_moved.get());
  }

  // Full C stays resident (m x n fp32): each slab's result both returns to
  // the host and remains available as the next outer product's B operand.
  ScopedMatrix cd(dev, m, n, StoragePrecision::FP32, "inner_blk.C");

  std::vector<ScopedMatrix> buf_b;
  buf_b.reserve(static_cast<size_t>(depth));
  for (int d = 0; d < depth; ++d) {
    buf_b.emplace_back(dev, kk, max_w, detail::input_storage(opts),
                       "inner_blk.B");
  }

  std::vector<Event> gemm_done;
  std::vector<RegionEvent> output_regions;
  for (size_t s = 0; s < slabs.size(); ++s) {
    const Slab slab = slabs[s];
    const size_t slot = s % static_cast<size_t>(depth);
    detail::count_slab_prefetch(s >= static_cast<size_t>(depth));
    if (s >= static_cast<size_t>(depth)) {
      dev.wait_event(streams.in, gemm_done[s - static_cast<size_t>(depth)]);
    }
    detail::wait_intersecting_regions(dev, streams.in, opts, Slab{0, kk},
                                      slab);
    detail::copy_h2d_retry(
        dev, sim::DeviceMatrixRef(buf_b[slot].get(), 0, 0, kk, slab.width),
        host_block(b.host(), 0, slab.offset, kk, slab.width), streams.in,
        "h2d B[" + std::to_string(s) + "]", opts);
    detail::sync_if(dev, opts);
    Event moved_in = dev.create_event();
    dev.record_event(moved_in, streams.in);

    dev.wait_event(streams.comp, moved_in);
    if (s == 0 && a_ready.valid()) dev.wait_event(streams.comp, a_ready);
    detail::checked_gemm(
        dev, opts, Op::Trans, Op::NoTrans, 1.0f, a_ref,
        sim::DeviceMatrixRef(buf_b[slot].get(), 0, 0, kk, slab.width), 0.0f,
        sim::DeviceMatrixRef(cd.get(), 0, slab.offset, m, slab.width),
        streams.comp, "gemm C=A'B[" + std::to_string(s) + "]");
    detail::sync_if(dev, opts);
    Event g = dev.create_event();
    dev.record_event(g, streams.comp);
    gemm_done.push_back(g);

    dev.wait_event(streams.out, g);
    detail::copy_d2h_retry(
        dev, host_block(c, 0, slab.offset, m, slab.width),
        sim::DeviceMatrixRef(cd.get(), 0, slab.offset, m, slab.width),
        streams.out, "d2h C[" + std::to_string(s) + "]", opts);
    detail::sync_if(dev, opts);
    Event out_ev = dev.create_event();
    dev.record_event(out_ev, streams.out);
    output_regions.push_back(
        RegionEvent{Slab{0, m}, Slab{slab.offset, slab.width}, out_ev});
  }

  for (auto& buf : buf_b) buf.reset();
  a_moved.reset();
  if (keep_c != nullptr) {
    *keep_c = cd.release();
  } else {
    cd.reset();
  }

  OocGemmStats stats;
  stats.summary = sim::summarize(dev.trace(), window_begin);
  stats.steps = static_cast<index_t>(slabs.size());
  stats.done = output_regions.back().event;
  stats.output_ready = std::move(output_regions);
  stats.device_result_ready = gemm_done.back();
  stats.steady_gemm_rate =
      dev.model().gemm_rate(Op::Trans, m, opts.blocksize, kk, opts.precision);
  stats.slab_h2d_seconds = dev.model().h2d_seconds(4 * kk * opts.blocksize);
  stats.slab_gemm_seconds =
      dev.model().gemm_seconds(Op::Trans, m, opts.blocksize, kk, opts.precision);
  stats.slab_d2h_seconds = dev.model().d2h_seconds(4 * m * opts.blocksize);
  return stats;
}

} // namespace

OocGemmStats inner_product_recursive(Device& dev, const Operand& a,
                                     const Operand& b, HostMutRef c,
                                     const OocGemmOptions& opts,
                                     DeviceMatrix* keep_c) {
  return detail::with_oom_degradation(dev, opts, [&](const OocGemmOptions& o) {
    return inner_product_recursive_impl(dev, a, b, c, o, keep_c);
  });
}

OocGemmStats inner_product_blocking(Device& dev, const Operand& a,
                                    const Operand& b, HostMutRef c,
                                    const OocGemmOptions& opts,
                                    DeviceMatrix* keep_c) {
  return detail::with_oom_degradation(dev, opts, [&](const OocGemmOptions& o) {
    return inner_product_blocking_impl(dev, a, b, c, o, keep_c);
  });
}

} // namespace rocqr::ooc
