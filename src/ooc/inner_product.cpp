// Out-of-core "inner product" engines: C = Aᵀ·B (the R12 = Q1ᵀ·A2 step).
//
// Both engines are expressed as SlabPlans on the slab-pipeline executor
// (ooc/pipeline.hpp), which owns the streams, fences, retry/ABFT hooks and
// prefetch accounting; this file keeps what is genuinely engine-specific:
// operand shapes, buffer pools and their rotation, the beta=0-on-first-slab
// accumulation, and the stats. OOM re-planning still wraps the whole body —
// every device buffer is allocated before the first device-to-host write,
// so an abandoned attempt leaks nothing and has not touched host data.
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "ooc/engine_util.hpp"
#include "ooc/gemm_engines.hpp"
#include "ooc/pipeline.hpp"
#include "ooc/resilience.hpp"
#include "sim/scoped_matrix.hpp"

namespace rocqr::ooc {

using blas::GemmPrecision;
using blas::Op;
using sim::Device;
using sim::DeviceMatrix;
using sim::Event;
using sim::HostMutRef;
using sim::ScopedMatrix;
using sim::StoragePrecision;

namespace {

OocGemmStats inner_product_recursive_impl(Device& dev, const Operand& a,
                                          const Operand& b, HostMutRef c,
                                          const OocGemmOptions& opts,
                                          DeviceMatrix* keep_c) {
  ROCQR_CHECK(!a.is_resident() && !b.is_resident(),
              "inner_product_recursive: streams both inputs from the host");
  const index_t kk = a.rows();
  const index_t m = a.cols();
  const index_t n = b.cols();
  ROCQR_CHECK(b.rows() == kk, "inner_product_recursive: k mismatch");
  ROCQR_CHECK(c.rows == m && c.cols == n,
              "inner_product_recursive: C shape mismatch");
  ROCQR_CHECK(m > 0 && n > 0 && kk > 0,
              "inner_product_recursive: empty operand");

  // Column panels of C: the unsplit case (one panel) is the paper's scheme
  // where the full accumulator is resident and both inputs stream exactly
  // once; small-memory devices split n and re-stream A per panel.
  const index_t panel_cols = opts.c_panel_cols > 0 ? opts.c_panel_cols : n;
  const auto panels = slab_partition(n, panel_cols);
  ROCQR_CHECK(keep_c == nullptr || panels.size() == 1,
              "inner_product_recursive: keep_c requires an unsplit C");

  const auto kslabs =
      slab_partition(kk, opts.blocksize, opts.ramp_up, opts.ramp_start);
  const index_t max_kw = max_slab_width(kslabs);
  const index_t max_pw = max_slab_width(panels);
  const int depth = opts.pipeline_depth;

  SlabPipeline pipe(dev, opts, "inner_product_recursive");

  // Streamed-input buffer pool (fp16 on device, like the LATER pipeline).
  std::vector<ScopedMatrix> buf_a;
  std::vector<ScopedMatrix> buf_b;
  buf_a.reserve(static_cast<size_t>(depth));
  buf_b.reserve(static_cast<size_t>(depth));
  for (int d = 0; d < depth; ++d) {
    buf_a.emplace_back(dev, max_kw, m, detail::input_storage(opts),
                       "inner_rec.A");
    buf_b.emplace_back(dev, max_kw, max_pw, detail::input_storage(opts),
                       "inner_rec.B");
  }
  // Accumulator pool: one buffer when C is unsplit, two cycling buffers when
  // n is split so panel p+1 can accumulate while panel p drains to the host.
  const index_t c_slots = panels.size() > 1 ? 2 : 1;
  std::vector<ScopedMatrix> buf_c;
  buf_c.reserve(static_cast<size_t>(c_slots));
  for (index_t d = 0; d < c_slots; ++d) {
    buf_c.emplace_back(dev, m, max_pw, StoragePrecision::FP32, "inner_rec.C");
  }

  const index_t ks = static_cast<index_t>(kslabs.size());

  SlabPlan plan;
  plan.label = "inner_product_recursive";
  plan.steps = static_cast<index_t>(panels.size()) * ks;
  plan.steps_per_group = ks;
  plan.input_slots = depth;
  // The group's first (beta=0) GEMM overwrites the rotating accumulator
  // slot, so it fences on the slot's previous drain on the compute stream.
  plan.output_fence = OutputFence::Compute;
  plan.output_slots = c_slots;
  plan.move_in = [&](MoveInCtx& ctx, index_t step) {
    const Slab kslab = kslabs[static_cast<size_t>(step % ks)];
    const Slab panel = panels[static_cast<size_t>(step / ks)];
    const size_t slot = static_cast<size_t>(step % depth);
    const auto s = std::to_string(step % ks);
    ctx.h2d(sim::DeviceMatrixRef(buf_a[slot].get(), 0, 0, kslab.width, m),
            host_block(a.host(), kslab.offset, 0, kslab.width, m),
            "h2d A[" + s + "]");
    ctx.h2d(sim::DeviceMatrixRef(buf_b[slot].get(), 0, 0, kslab.width,
                                 panel.width),
            host_block(b.host(), kslab.offset, panel.offset, kslab.width,
                       panel.width),
            "h2d B[" + s + "]");
  };
  plan.compute = [&](ComputeCtx& ctx, index_t step) {
    const index_t s = step % ks;
    const Slab kslab = kslabs[static_cast<size_t>(s)];
    const Slab panel = panels[static_cast<size_t>(step / ks)];
    const size_t slot = static_cast<size_t>(step % depth);
    const DeviceMatrix& cd =
        buf_c[static_cast<size_t>((step / ks) % c_slots)].get();
    // beta=0 on the panel's first slab: the accumulator slot may hold a
    // previous panel's values.
    ctx.gemm(Op::Trans, Op::NoTrans, 1.0f,
             sim::DeviceMatrixRef(buf_a[slot].get(), 0, 0, kslab.width, m),
             sim::DeviceMatrixRef(buf_b[slot].get(), 0, 0, kslab.width,
                                  panel.width),
             s == 0 ? 0.0f : 1.0f,
             sim::DeviceMatrixRef(cd, 0, 0, m, panel.width),
             "gemm C+=A'B[" + std::to_string(s) + "]");
  };
  // Single move-out of the accumulated panel.
  plan.move_out = [&](MoveOutCtx& ctx, index_t p) {
    const Slab panel = panels[static_cast<size_t>(p)];
    const DeviceMatrix& cd = buf_c[static_cast<size_t>(p % c_slots)].get();
    ctx.d2h(host_block(c, 0, panel.offset, m, panel.width),
            sim::DeviceMatrixRef(cd, 0, 0, m, panel.width),
            "d2h C panel " + std::to_string(p));
  };
  plan.output_region = [&](index_t p) {
    const Slab panel = panels[static_cast<size_t>(p)];
    return std::make_optional(
        std::make_pair(Slab{0, m}, Slab{panel.offset, panel.width}));
  };

  SlabRunResult run = pipe.run(plan);

  // Release streamed-input buffers; their last reader has been enqueued.
  for (auto& buf : buf_a) buf.reset();
  for (auto& buf : buf_b) buf.reset();
  if (keep_c != nullptr) {
    *keep_c = buf_c[0].release();
  } else {
    for (auto& buf : buf_c) buf.reset();
  }

  OocGemmStats stats;
  stats.summary = sim::summarize(dev.trace(), pipe.window_begin());
  stats.steps = plan.steps;
  stats.output_ready = std::move(run.output_regions);
  stats.done = run.out_done.back();
  stats.device_result_ready = run.compute_done.back();
  stats.plan = pipe.plan_description();
  stats.steady_gemm_rate = dev.model().gemm_rate(
      Op::Trans, m, panel_cols, opts.blocksize, opts.precision);
  stats.slab_h2d_seconds =
      dev.model().h2d_seconds(4 * opts.blocksize * m) +
      dev.model().h2d_seconds(4 * opts.blocksize * panel_cols);
  stats.slab_gemm_seconds = dev.model().gemm_seconds(
      Op::Trans, m, panel_cols, opts.blocksize, opts.precision);
  stats.slab_d2h_seconds = dev.model().d2h_seconds(4 * m * panel_cols);
  return stats;
}

OocGemmStats inner_product_blocking_impl(Device& dev, const Operand& a,
                                         const Operand& b, HostMutRef c,
                                         const OocGemmOptions& opts,
                                         DeviceMatrix* keep_c) {
  ROCQR_CHECK(!b.is_resident(),
              "inner_product_blocking: B streams from the host");
  const index_t kk = a.rows();
  const index_t m = a.cols();
  const index_t n = b.cols();
  ROCQR_CHECK(b.rows() == kk, "inner_product_blocking: k mismatch");
  ROCQR_CHECK(c.rows == m && c.cols == n,
              "inner_product_blocking: C shape mismatch");
  ROCQR_CHECK(m > 0 && n > 0 && kk > 0, "inner_product_blocking: empty operand");

  const auto slabs =
      slab_partition(n, opts.blocksize, opts.ramp_up, opts.ramp_start);
  const index_t max_w = max_slab_width(slabs);
  const int depth = opts.pipeline_depth;

  SlabPipeline pipe(dev, opts, "inner_product_blocking");

  // The panel Q is resident — either it already lives on the device (QR-level
  // optimization) or it is moved in once here.
  ResidentInput ares = stage_operand(pipe, a, "inner_blk.A", "h2d A (panel)");

  // Full C stays resident (m x n fp32): each slab's result both returns to
  // the host and remains available as the next outer product's B operand.
  ScopedMatrix cd(dev, m, n, StoragePrecision::FP32, "inner_blk.C");

  std::vector<ScopedMatrix> buf_b;
  buf_b.reserve(static_cast<size_t>(depth));
  for (int d = 0; d < depth; ++d) {
    buf_b.emplace_back(dev, kk, max_w, detail::input_storage(opts),
                       "inner_blk.B");
  }

  SlabPlan plan;
  plan.label = "inner_product_blocking";
  plan.steps = static_cast<index_t>(slabs.size());
  plan.input_slots = depth;
  plan.resident_ready = {ares.ready};
  plan.input_region = [&](index_t s) {
    return std::make_optional(
        std::make_pair(Slab{0, kk}, slabs[static_cast<size_t>(s)]));
  };
  plan.move_in = [&](MoveInCtx& ctx, index_t s) {
    const Slab slab = slabs[static_cast<size_t>(s)];
    const size_t slot = static_cast<size_t>(s % depth);
    ctx.h2d(sim::DeviceMatrixRef(buf_b[slot].get(), 0, 0, kk, slab.width),
            host_block(b.host(), 0, slab.offset, kk, slab.width),
            "h2d B[" + std::to_string(s) + "]");
  };
  plan.compute = [&](ComputeCtx& ctx, index_t s) {
    const Slab slab = slabs[static_cast<size_t>(s)];
    const size_t slot = static_cast<size_t>(s % depth);
    ctx.gemm(Op::Trans, Op::NoTrans, 1.0f, ares.ref,
             sim::DeviceMatrixRef(buf_b[slot].get(), 0, 0, kk, slab.width),
             0.0f,
             sim::DeviceMatrixRef(cd.get(), 0, slab.offset, m, slab.width),
             "gemm C=A'B[" + std::to_string(s) + "]");
  };
  plan.move_out = [&](MoveOutCtx& ctx, index_t s) {
    const Slab slab = slabs[static_cast<size_t>(s)];
    ctx.d2h(host_block(c, 0, slab.offset, m, slab.width),
            sim::DeviceMatrixRef(cd.get(), 0, slab.offset, m, slab.width),
            "d2h C[" + std::to_string(s) + "]");
  };
  plan.output_region = [&](index_t s) {
    const Slab slab = slabs[static_cast<size_t>(s)];
    return std::make_optional(
        std::make_pair(Slab{0, m}, Slab{slab.offset, slab.width}));
  };

  SlabRunResult run = pipe.run(plan);

  for (auto& buf : buf_b) buf.reset();
  ares.owned.reset();
  if (keep_c != nullptr) {
    *keep_c = cd.release();
  } else {
    cd.reset();
  }

  OocGemmStats stats;
  stats.summary = sim::summarize(dev.trace(), pipe.window_begin());
  stats.steps = static_cast<index_t>(slabs.size());
  stats.done = run.output_regions.back().event;
  stats.output_ready = std::move(run.output_regions);
  stats.device_result_ready = run.compute_done.back();
  stats.plan = pipe.plan_description();
  stats.steady_gemm_rate =
      dev.model().gemm_rate(Op::Trans, m, opts.blocksize, kk, opts.precision);
  stats.slab_h2d_seconds = dev.model().h2d_seconds(4 * kk * opts.blocksize);
  stats.slab_gemm_seconds =
      dev.model().gemm_seconds(Op::Trans, m, opts.blocksize, kk, opts.precision);
  stats.slab_d2h_seconds = dev.model().d2h_seconds(4 * m * opts.blocksize);
  return stats;
}

} // namespace

OocGemmStats inner_product_recursive(Device& dev, const Operand& a,
                                     const Operand& b, HostMutRef c,
                                     const OocGemmOptions& opts,
                                     DeviceMatrix* keep_c) {
  opts.validate();
  return detail::with_oom_degradation(dev, opts, [&](const OocGemmOptions& o) {
    return inner_product_recursive_impl(dev, a, b, c, o, keep_c);
  });
}

OocGemmStats inner_product_blocking(Device& dev, const Operand& a,
                                    const Operand& b, HostMutRef c,
                                    const OocGemmOptions& opts,
                                    DeviceMatrix* keep_c) {
  opts.validate();
  return detail::with_oom_degradation(dev, opts, [&](const OocGemmOptions& o) {
    return inner_product_blocking_impl(dev, a, b, c, o, keep_c);
  });
}

} // namespace rocqr::ooc
