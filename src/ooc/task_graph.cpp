#include "ooc/task_graph.hpp"

#include <algorithm>
#include <queue>
#include <sstream>

#include "common/error.hpp"
#include "ooc/engine_util.hpp"
#include "ooc/resilience.hpp"

namespace rocqr::ooc {

using sim::Event;

namespace {

const char* stage_name(TaskStage s) {
  switch (s) {
  case TaskStage::MoveIn:
    return "move-in";
  case TaskStage::Compute:
    return "compute";
  case TaskStage::MoveOut:
    return "move-out";
  }
  return "?";
}

[[noreturn]] void wrong_stage(TaskStage stage, const char* op) {
  throw InvalidArgument(std::string("TaskCtx::") + op +
                        " called from a " + stage_name(stage) + " node");
}

} // namespace

// ---------------------------------------------------------------------------
// TaskCtx: thin forwards onto the graph's streams with the cross-cutting
// hooks (retry, ABFT, sync_if) applied at the single site, mirroring the
// SlabPipeline stage contexts.

void TaskCtx::h2d(sim::DeviceMatrixRef dst, sim::HostConstRef src,
                  const std::string& name) {
  if (stage_ != TaskStage::MoveIn) wrong_stage(stage_, "h2d");
  detail::copy_h2d_retry(g_.dev_, dst, src, g_.in_, name, g_.opts_);
  detail::sync_if(g_.dev_, g_.opts_);
}

void TaskCtx::gemm(blas::Op opa, blas::Op opb, float alpha,
                   sim::DeviceMatrixRef a, sim::DeviceMatrixRef b, float beta,
                   sim::DeviceMatrixRef c, const std::string& name) {
  if (stage_ != TaskStage::Compute) wrong_stage(stage_, "gemm");
  detail::checked_gemm(g_.dev_, g_.opts_, opa, opb, alpha, a, b, beta, c,
                       g_.comp_, name);
  detail::sync_if(g_.dev_, g_.opts_);
}

void TaskCtx::trsm(sim::Device::TrsmKind kind, sim::DeviceMatrixRef tri,
                   sim::DeviceMatrixRef b, const std::string& name) {
  if (stage_ != TaskStage::Compute) wrong_stage(stage_, "trsm");
  g_.dev_.trsm(kind, tri, b, g_.opts_.precision, g_.comp_, name);
  detail::sync_if(g_.dev_, g_.opts_);
}

sim::Stream TaskCtx::stream() const {
  if (stage_ != TaskStage::Compute) wrong_stage(stage_, "stream");
  return g_.comp_;
}

void TaskCtx::d2h(sim::HostMutRef dst, sim::DeviceMatrixRef src,
                  const std::string& name) {
  if (stage_ != TaskStage::MoveOut) wrong_stage(stage_, "d2h");
  detail::copy_d2h_retry(g_.dev_, dst, src, g_.out_, name, g_.opts_);
  detail::sync_if(g_.dev_, g_.opts_);
}

void TaskCtx::wait(const Event& e) {
  if (e.valid()) g_.dev_.wait_event(g_.stream_for(stage_), e);
}

sim::Device& TaskCtx::device() { return g_.dev_; }

const OocGemmOptions& TaskCtx::options() const { return g_.opts_; }

// ---------------------------------------------------------------------------

TaskGraph::TaskGraph(sim::Device& dev, const OocGemmOptions& opts,
                     std::string span_name)
    : dev_(dev), opts_(opts), window_begin_(dev.trace().size()) {
  if (!span_name.empty()) span_.emplace(dev_, std::move(span_name));
  in_ = dev_.create_stream();
  comp_ = dev_.create_stream();
  out_ = dev_.create_stream();
  detail::wait_host_inputs(dev_, in_, opts_);
}

sim::Stream TaskGraph::stream_for(TaskStage stage) const {
  switch (stage) {
  case TaskStage::MoveIn:
    return in_;
  case TaskStage::Compute:
    return comp_;
  case TaskStage::MoveOut:
    return out_;
  }
  return comp_;
}

TaskId TaskGraph::add(TaskStage stage, std::string label,
                      std::function<void(TaskCtx&)> body,
                      std::vector<TaskId> deps, std::int64_t priority) {
  const TaskId id = static_cast<TaskId>(nodes_.size());
  for (TaskId d : deps) {
    if (d < 0 || d >= id) {
      throw InvalidArgument("TaskGraph::add: node \"" + label +
                            "\" depends on unknown node " +
                            std::to_string(d));
    }
  }
  Node node;
  node.stage = stage;
  node.label = std::move(label);
  node.body = std::move(body);
  node.deps = std::move(deps);
  node.priority = priority;
  nodes_.push_back(std::move(node));
  return id;
}

void TaskGraph::add_dep(TaskId node, TaskId dep) {
  if (node < 0 || node >= static_cast<TaskId>(nodes_.size()) || dep < 0 ||
      dep >= static_cast<TaskId>(nodes_.size())) {
    throw InvalidArgument("TaskGraph::add_dep: unknown node id");
  }
  Node& n = nodes_[static_cast<size_t>(node)];
  if (n.enqueued) {
    throw InvalidArgument("TaskGraph::add_dep: node \"" + n.label +
                          "\" was already enqueued");
  }
  n.deps.push_back(dep);
}

void TaskGraph::set_input_region(TaskId node, Slab rows, Slab cols) {
  if (node < 0 || node >= static_cast<TaskId>(nodes_.size())) {
    throw InvalidArgument("TaskGraph::set_input_region: unknown node id");
  }
  Node& n = nodes_[static_cast<size_t>(node)];
  if (n.stage != TaskStage::MoveIn) {
    throw InvalidArgument("TaskGraph::set_input_region: node \"" + n.label +
                          "\" is not a move-in node");
  }
  n.input_region = std::make_pair(rows, cols);
}

void TaskGraph::enqueue(Node& node) {
  const sim::Stream s = stream_for(node.stage);
  for (TaskId d : node.deps) {
    const Node& dep = nodes_[static_cast<size_t>(d)];
    // Same-stream dependencies ride the FIFO: the dep's ops were enqueued
    // earlier on this stream, so they execute earlier. Cross-stream (and
    // cross-graph, via TaskCtx::wait) dependencies need the event edge.
    if (dep.stage == node.stage) continue;
    if (dep.done.valid()) dev_.wait_event(s, dep.done);
  }
  if (node.input_region) {
    detail::wait_intersecting_regions(dev_, s, opts_, node.input_region->first,
                                      node.input_region->second);
  }
  if (node.body) {
    TaskCtx ctx(*this, node.stage);
    node.body(ctx);
  }
  node.done = dev_.create_event();
  dev_.record_event(node.done, s);
  node.enqueued = true;
}

void TaskGraph::run() {
  // Deterministic list schedule over the not-yet-enqueued subgraph: Kahn's
  // algorithm with a (priority, id) min-heap as the ready set.
  const size_t total = nodes_.size();
  std::vector<index_t> pending(total, 0);
  std::vector<std::vector<TaskId>> successors(total);
  size_t remaining = 0;
  for (size_t i = 0; i < total; ++i) {
    if (nodes_[i].enqueued) continue;
    ++remaining;
    for (TaskId d : nodes_[i].deps) {
      if (!nodes_[static_cast<size_t>(d)].enqueued) {
        ++pending[i];
        successors[static_cast<size_t>(d)].push_back(
            static_cast<TaskId>(i));
      }
    }
  }
  if (remaining == 0) return;

  using Key = std::pair<std::int64_t, TaskId>;
  std::priority_queue<Key, std::vector<Key>, std::greater<Key>> ready;
  for (size_t i = 0; i < total; ++i) {
    if (!nodes_[i].enqueued && pending[i] == 0) {
      ready.emplace(nodes_[i].priority, static_cast<TaskId>(i));
    }
  }

  size_t enqueued = 0;
  index_t n_in = 0, n_comp = 0, n_out = 0, n_edges = 0;
  while (!ready.empty()) {
    const TaskId id = ready.top().second;
    ready.pop();
    Node& node = nodes_[static_cast<size_t>(id)];
    enqueue(node);
    ++enqueued;
    switch (node.stage) {
    case TaskStage::MoveIn:
      ++n_in;
      break;
    case TaskStage::Compute:
      ++n_comp;
      break;
    case TaskStage::MoveOut:
      ++n_out;
      break;
    }
    n_edges += static_cast<index_t>(node.deps.size());
    for (TaskId s : successors[static_cast<size_t>(id)]) {
      if (--pending[static_cast<size_t>(s)] == 0) {
        ready.emplace(nodes_[static_cast<size_t>(s)].priority, s);
      }
    }
  }

  if (enqueued != remaining) {
    for (const Node& n : nodes_) {
      if (!n.enqueued) {
        throw InvalidArgument(
            "TaskGraph::run: dependency cycle through node \"" + n.label +
            "\"");
      }
    }
  }

  std::ostringstream os;
  if (!plan_description_.empty()) os << plan_description_ << "\n";
  os << "task-graph run: " << enqueued << " node(s) (" << n_in
     << " move-in, " << n_comp << " compute, " << n_out << " move-out), "
     << n_edges << " edge(s)";
  plan_description_ = os.str();
}

Event TaskGraph::done(TaskId id) const {
  if (id < 0 || id >= static_cast<TaskId>(nodes_.size())) {
    throw InvalidArgument("TaskGraph::done: unknown node id");
  }
  return nodes_[static_cast<size_t>(id)].done;
}

} // namespace rocqr::ooc
