#include "ooc/task_graph.hpp"

#include <algorithm>
#include <queue>
#include <sstream>

#include "common/error.hpp"
#include "ooc/engine_util.hpp"
#include "ooc/resilience.hpp"

namespace rocqr::ooc {

using sim::Event;

namespace {

const char* stage_name(TaskStage s) {
  switch (s) {
  case TaskStage::MoveIn:
    return "move-in";
  case TaskStage::Compute:
    return "compute";
  case TaskStage::MoveOut:
    return "move-out";
  }
  return "?";
}

[[noreturn]] void wrong_stage(TaskStage stage, const char* op) {
  throw InvalidArgument(std::string("TaskCtx::") + op +
                        " called from a " + stage_name(stage) + " node");
}

} // namespace

// ---------------------------------------------------------------------------
// TaskCtx: thin forwards onto the graph's streams with the cross-cutting
// hooks (retry, ABFT, sync_if) applied at the single site, mirroring the
// SlabPipeline stage contexts.

void TaskCtx::h2d(sim::DeviceMatrixRef dst, sim::HostConstRef src,
                  const std::string& name) {
  if (stage_ != TaskStage::MoveIn) wrong_stage(stage_, "h2d");
  detail::copy_h2d_retry(g_.dev_, dst, src, g_.in_, name, g_.opts_);
  detail::sync_if(g_.dev_, g_.opts_);
}

void TaskCtx::h2d_batched(
    const std::vector<sim::Device::H2dBatchEntry>& entries,
    const std::string& name) {
  if (stage_ != TaskStage::MoveIn) wrong_stage(stage_, "h2d_batched");
  detail::copy_h2d_batched_retry(g_.dev_, entries, g_.in_, name,
                                 g_.opts_.transfer_max_attempts,
                                 g_.opts_.transfer_backoff_seconds);
  detail::sync_if(g_.dev_, g_.opts_);
}

void TaskCtx::gemm(blas::Op opa, blas::Op opb, float alpha,
                   sim::DeviceMatrixRef a, sim::DeviceMatrixRef b, float beta,
                   sim::DeviceMatrixRef c, const std::string& name) {
  if (stage_ != TaskStage::Compute) wrong_stage(stage_, "gemm");
  detail::checked_gemm(g_.dev_, g_.opts_, opa, opb, alpha, a, b, beta, c,
                       g_.comp_, name);
  detail::sync_if(g_.dev_, g_.opts_);
}

void TaskCtx::gemm_batched(
    const std::vector<sim::Device::GemmBatchEntry>& entries,
    const std::string& name) {
  if (stage_ != TaskStage::Compute) wrong_stage(stage_, "gemm_batched");
  g_.dev_.gemm_batched(entries, g_.opts_.precision, g_.comp_, name);
  detail::sync_if(g_.dev_, g_.opts_);
}

void TaskCtx::trsm(sim::Device::TrsmKind kind, sim::DeviceMatrixRef tri,
                   sim::DeviceMatrixRef b, const std::string& name) {
  if (stage_ != TaskStage::Compute) wrong_stage(stage_, "trsm");
  g_.dev_.trsm(kind, tri, b, g_.opts_.precision, g_.comp_, name);
  detail::sync_if(g_.dev_, g_.opts_);
}

sim::Stream TaskCtx::stream() const {
  if (stage_ != TaskStage::Compute) wrong_stage(stage_, "stream");
  return g_.comp_;
}

void TaskCtx::d2h(sim::HostMutRef dst, sim::DeviceMatrixRef src,
                  const std::string& name) {
  if (stage_ != TaskStage::MoveOut) wrong_stage(stage_, "d2h");
  detail::copy_d2h_retry(g_.dev_, dst, src, g_.out_, name, g_.opts_);
  detail::sync_if(g_.dev_, g_.opts_);
}

void TaskCtx::d2h_batched(
    const std::vector<sim::Device::D2hBatchEntry>& entries,
    const std::string& name) {
  if (stage_ != TaskStage::MoveOut) wrong_stage(stage_, "d2h_batched");
  detail::copy_d2h_batched_retry(g_.dev_, entries, g_.out_, name,
                                 g_.opts_.transfer_max_attempts,
                                 g_.opts_.transfer_backoff_seconds);
  detail::sync_if(g_.dev_, g_.opts_);
}

Event TaskCtx::emit(sim::HostMutRef dst, sim::DeviceMatrixRef src,
                    const std::string& name) {
  if (stage_ != TaskStage::Compute) wrong_stage(stage_, "emit");
  Event e = g_.dev_.create_event();
  g_.dev_.record_event(e, g_.comp_);
  g_.dev_.wait_event(g_.out_, e);
  detail::copy_d2h_retry(g_.dev_, dst, src, g_.out_, name, g_.opts_);
  detail::sync_if(g_.dev_, g_.opts_);
  return e;
}

void TaskCtx::wait(const Event& e) {
  if (e.valid()) g_.dev_.wait_event(g_.stream_for(stage_), e);
}

sim::Device& TaskCtx::device() { return g_.dev_; }

const OocGemmOptions& TaskCtx::options() const { return g_.opts_; }

// ---------------------------------------------------------------------------

TaskGraph::TaskGraph(sim::Device& dev, const OocGemmOptions& opts,
                     std::string span_name, std::vector<sim::Event> wait_before)
    : dev_(dev), opts_(opts),
      name_(span_name.empty() ? "taskgraph" : span_name),
      window_begin_(dev.trace().size()) {
  if (!span_name.empty()) span_.emplace(dev_, std::move(span_name));
  in_ = dev_.create_stream();
  comp_ = dev_.create_stream();
  out_ = dev_.create_stream();
  for (const Event& e : wait_before) {
    if (e.valid()) dev_.wait_event(in_, e);
  }
  detail::wait_host_inputs(dev_, in_, opts_);
}

TaskGraph::~TaskGraph() {
  if (opts_.plan_log == nullptr || nodes_.empty()) return;
  PlanLog& log = *opts_.plan_log;
  log.text += name_ + ": ";
  log.text += plan_description_.empty() ? "built but never run"
                                        : plan_description_;
  log.text += "\n";
  log.dot += dot(name_);
}

sim::Stream TaskGraph::stream_for(TaskStage stage) const {
  switch (stage) {
  case TaskStage::MoveIn:
    return in_;
  case TaskStage::Compute:
    return comp_;
  case TaskStage::MoveOut:
    return out_;
  }
  return comp_;
}

TaskId TaskGraph::add(TaskStage stage, std::string label,
                      std::function<void(TaskCtx&)> body,
                      std::vector<TaskId> deps, std::int64_t priority) {
  const TaskId id = static_cast<TaskId>(nodes_.size());
  for (TaskId d : deps) {
    if (d < 0 || d >= id) {
      throw InvalidArgument("TaskGraph::add: node \"" + label +
                            "\" depends on unknown node " +
                            std::to_string(d));
    }
  }
  Node node;
  node.stage = stage;
  node.label = std::move(label);
  node.body = std::move(body);
  node.deps = std::move(deps);
  node.priority = priority;
  nodes_.push_back(std::move(node));
  return id;
}

void TaskGraph::add_dep(TaskId node, TaskId dep) {
  if (node < 0 || node >= static_cast<TaskId>(nodes_.size()) || dep < 0 ||
      dep >= static_cast<TaskId>(nodes_.size())) {
    throw InvalidArgument("TaskGraph::add_dep: unknown node id");
  }
  Node& n = nodes_[static_cast<size_t>(node)];
  if (n.enqueued) {
    throw InvalidArgument("TaskGraph::add_dep: node \"" + n.label +
                          "\" was already enqueued");
  }
  n.deps.push_back(dep);
}

void TaskGraph::set_input_region(TaskId node, Slab rows, Slab cols) {
  if (node < 0 || node >= static_cast<TaskId>(nodes_.size())) {
    throw InvalidArgument("TaskGraph::set_input_region: unknown node id");
  }
  Node& n = nodes_[static_cast<size_t>(node)];
  if (n.stage != TaskStage::MoveIn) {
    throw InvalidArgument("TaskGraph::set_input_region: node \"" + n.label +
                          "\" is not a move-in node");
  }
  n.input_region = std::make_pair(rows, cols);
}

void TaskGraph::enqueue(Node& node) {
  const sim::Stream s = stream_for(node.stage);
  try {
    for (TaskId d : node.deps) {
      const Node& dep = nodes_[static_cast<size_t>(d)];
      // Same-stream dependencies ride the FIFO: the dep's ops were enqueued
      // earlier on this stream, so they execute earlier. Cross-stream (and
      // cross-graph, via TaskCtx::wait) dependencies need the event edge.
      if (dep.stage == node.stage) continue;
      ++n_fence_edges_;
      if (dep.done.valid()) dev_.wait_event(s, dep.done);
    }
    if (node.input_region) {
      detail::wait_intersecting_regions(dev_, s, opts_,
                                        node.input_region->first,
                                        node.input_region->second);
    }
    if (node.body) {
      TaskCtx ctx(*this, node.stage);
      node.body(ctx);
    }
    node.done = dev_.create_event();
    dev_.record_event(node.done, s);
  } catch (const DeviceLost& e) {
    // Attribute the hard loss to the task that hit it: labels carry the
    // owning job's prefix in batched runs, so serve failover logs can name
    // the victim instead of reporting a bare device failure.
    throw DeviceLost(std::string(e.what()) + " [task \"" + node.label +
                     "\"]");
  }
  node.body = nullptr; // enqueued exactly once; free the captures
  node.enqueued = true;
}

void TaskGraph::run() {
  // Deterministic list schedule over the not-yet-enqueued subgraph: Kahn's
  // algorithm with a (priority, id) min-heap as the ready set. Nodes below
  // run_from_ were enqueued by an earlier run(), so only the suffix is
  // solved — a pipeline that lowers thousands of steps through incremental
  // runs stays linear in total node count.
  const size_t total = nodes_.size();
  const size_t base = run_from_;
  const size_t count = total - base;
  if (count == 0) return;
  std::vector<index_t> pending(count, 0);
  std::vector<std::vector<TaskId>> successors(count);
  size_t remaining = 0;
  for (size_t i = base; i < total; ++i) {
    if (nodes_[i].enqueued) continue;
    ++remaining;
    for (TaskId d : nodes_[i].deps) {
      if (!nodes_[static_cast<size_t>(d)].enqueued) {
        ++pending[i - base];
        successors[static_cast<size_t>(d) - base].push_back(
            static_cast<TaskId>(i));
      }
    }
  }
  if (remaining == 0) {
    run_from_ = total;
    return;
  }

  using Key = std::pair<std::int64_t, TaskId>;
  std::priority_queue<Key, std::vector<Key>, std::greater<Key>> ready;
  for (size_t i = base; i < total; ++i) {
    if (!nodes_[i].enqueued && pending[i - base] == 0) {
      ready.emplace(nodes_[i].priority, static_cast<TaskId>(i));
    }
  }

  size_t enqueued = 0;
  while (!ready.empty()) {
    const TaskId id = ready.top().second;
    ready.pop();
    Node& node = nodes_[static_cast<size_t>(id)];
    enqueue(node);
    ++enqueued;
    switch (node.stage) {
    case TaskStage::MoveIn:
      ++n_in_;
      break;
    case TaskStage::Compute:
      ++n_comp_;
      break;
    case TaskStage::MoveOut:
      ++n_out_;
      break;
    }
    n_edges_ += static_cast<index_t>(node.deps.size());
    for (TaskId s : successors[static_cast<size_t>(id) - base]) {
      if (--pending[static_cast<size_t>(s) - base] == 0) {
        ready.emplace(nodes_[static_cast<size_t>(s)].priority, s);
      }
    }
  }

  if (enqueued != remaining) {
    for (const Node& n : nodes_) {
      if (!n.enqueued) {
        throw InvalidArgument(
            "TaskGraph::run: dependency cycle through node \"" + n.label +
            "\"");
      }
    }
  }
  run_from_ = total;

  // One cumulative line: incremental runs (checkpoint segments, pipeline
  // lowering one plan at a time) update it in place instead of appending.
  std::ostringstream os;
  os << "task-graph run: " << (n_in_ + n_comp_ + n_out_) << " node(s) ("
     << n_in_ << " move-in, " << n_comp_ << " compute, " << n_out_
     << " move-out), " << n_edges_ << " edge(s), " << n_fence_edges_
     << " fence edge(s)";
  plan_description_ = os.str();
}

Event TaskGraph::done(TaskId id) const {
  if (id < 0 || id >= static_cast<TaskId>(nodes_.size())) {
    throw InvalidArgument("TaskGraph::done: unknown node id");
  }
  return nodes_[static_cast<size_t>(id)].done;
}

namespace {

std::string dot_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

const char* dot_shape(TaskStage s) {
  switch (s) {
  case TaskStage::MoveIn:
    return "box";
  case TaskStage::Compute:
    return "ellipse";
  case TaskStage::MoveOut:
    return "box";
  }
  return "box";
}

const char* dot_color(TaskStage s) {
  switch (s) {
  case TaskStage::MoveIn:
    return "lightblue";
  case TaskStage::Compute:
    return "palegreen";
  case TaskStage::MoveOut:
    return "lightsalmon";
  }
  return "white";
}

} // namespace

std::string TaskGraph::dot(const std::string& graph_name) const {
  std::ostringstream os;
  os << "digraph \"" << dot_escape(graph_name) << "\" {\n"
     << "  rankdir=LR;\n"
     << "  node [fontname=\"monospace\", style=filled];\n";
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    os << "  n" << i << " [label=\"" << dot_escape(n.label) << "\\n("
       << stage_name(n.stage) << ")\", shape=" << dot_shape(n.stage)
       << ", fillcolor=" << dot_color(n.stage) << "];\n";
  }
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    for (TaskId d : n.deps) {
      const Node& dep = nodes_[static_cast<size_t>(d)];
      // Solid = a real wait_event fence; dashed = same-stream FIFO order.
      os << "  n" << d << " -> n" << i;
      if (dep.stage == n.stage) os << " [style=dashed]";
      os << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

} // namespace rocqr::ooc
