// Declarative slab-pipeline frontend — a thin lowering layer over the
// task-DAG executor (`ooc::TaskGraph`), which owns the three-stream
// out-of-core schedule every engine in this repo uses.
//
// An engine used to hand-roll: stream creation, the streamed-input
// buffer-pool fence (wait the GEMM that last read slot s%depth), the
// staging-buffer output-slot fence (§4.1.2), `host_input_ready` waits,
// region-intersection waits (§4.2 cross-operation pipelining), per-site
// retry/ABFT/sync_if, and the slab-prefetch counters. Now it builds a
// `SlabPlan` — buffer depths, fence kind, per-step move-in/compute/move-out
// callbacks — and `SlabPipeline::run` *compiles* it into task-graph nodes:
// each step lowers to a linear move-in -> compute (-> move-out) chain, and
// the fence taxonomy lowers to explicit WAR edges against earlier nodes
// (input pool -> edge to the compute `input_slots` steps back; output slot
// -> edge to the move-out `output_slots` groups back, landing on the
// move-in or compute node per the fence kind). The lowering is
// schedule-preserving by construction: nodes are added in the legacy
// program order with equal priority, the executor enqueues ready nodes in
// id order, and same-stream edges ride the stream FIFO — so the device
// sees the same operations in the same order with the same event
// dependencies as the hand-rolled loops (see
// tests/schedule_golden_test.cpp and tests/ooc_pipeline_lowering_test.cpp,
// which pin the resulting timelines).
//
// Stage model (docs/ARCHITECTURE.md has the long-form description):
//
//   per step:  [input-pool fence | counted output fence]
//              -> region waits -> streamed move-in -> output-slot fence
//              -> output move-in -> moved_in event -> compute waits
//              -> compute -> compute event
//   per group: -> move-out fence -> move-out -> out event -> RegionEvent
//
// One-shot stages (a resident operand, a panel factorization, a staged
// triangle) run through `stage_resident` / `run_task` as eagerly-enqueued
// nodes on the same graph, so drivers compose slab loops with panel tasks
// without touching `dev.create_stream()` / `dev.record_event()` themselves.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ooc/gemm_engines.hpp"
#include "ooc/task_graph.hpp"
#include "sim/device.hpp"
#include "sim/scoped_matrix.hpp"
#include "sim/trace_export.hpp"

namespace rocqr::ooc {

class SlabPipeline;

/// Move-in stage handle: host-to-device transfers on the pipeline's H2D
/// stream, with transfer retry and synchronous-mode serialization applied.
/// A thin rename of the underlying TaskCtx, kept so engine callbacks read
/// in stage vocabulary.
class MoveInCtx {
 public:
  void h2d(sim::DeviceMatrixRef dst, sim::HostConstRef src,
           const std::string& name) {
    t_.h2d(dst, src, name);
  }
  /// Extra per-step dependency of the move-in (valid-checked).
  void wait(const sim::Event& e) { t_.wait(e); }

 private:
  friend class SlabPipeline;
  explicit MoveInCtx(TaskCtx& t) : t_(t) {}
  TaskCtx& t_;
};

/// Compute stage handle: GEMM/TRSM on the pipeline's compute stream (with
/// the opt-in ABFT check), plus an escape hatch for panel kernels that
/// enqueue custom compute ops themselves.
class ComputeCtx {
 public:
  void gemm(blas::Op opa, blas::Op opb, float alpha, sim::DeviceMatrixRef a,
            sim::DeviceMatrixRef b, float beta, sim::DeviceMatrixRef c,
            const std::string& name) {
    t_.gemm(opa, opb, alpha, a, b, beta, c, name);
  }
  void trsm(sim::Device::TrsmKind kind, sim::DeviceMatrixRef tri,
            sim::DeviceMatrixRef b, const std::string& name) {
    t_.trsm(kind, tri, b, name);
  }
  void wait(const sim::Event& e) { t_.wait(e); }
  /// The compute stream, for panel factorization kernels
  /// (panel_qr_device & co.) that enqueue their own custom ops.
  sim::Stream stream() const { return t_.stream(); }
  /// Records an event on the compute stream, fences the move-out stream on
  /// it, and enqueues the device-to-host copy there — the "drain an
  /// intermediate while compute continues" idiom of the recursive drivers.
  sim::Event emit(sim::HostMutRef dst, sim::DeviceMatrixRef src,
                  const std::string& name) {
    return t_.emit(dst, src, name);
  }

 private:
  friend class SlabPipeline;
  explicit ComputeCtx(TaskCtx& t) : t_(t) {}
  TaskCtx& t_;
};

/// Move-out stage handle: device-to-host transfers on the D2H stream.
class MoveOutCtx {
 public:
  void d2h(sim::HostMutRef dst, sim::DeviceMatrixRef src,
           const std::string& name) {
    t_.d2h(dst, src, name);
  }
  void wait(const sim::Event& e) { t_.wait(e); }

 private:
  friend class SlabPipeline;
  explicit MoveOutCtx(TaskCtx& t) : t_(t) {}
  TaskCtx& t_;
};

/// How a step's move-in is fenced against the output working set.
enum class OutputFence {
  /// No output-slot fence (the blocking inner product: C is fully
  /// resident, every slab writes a disjoint column block).
  None,
  /// Move-in waits the move-out that last used this output slot
  /// (the recursive/colwise outer products' §4.1.2 rotating C pair; the
  /// streamed-input pool fence does the prefetch accounting).
  MoveIn,
  /// Same fence, but it IS the prefetch account — engines with no
  /// streamed-input pool (blocking outer product, trsm base case) count
  /// hit/miss on the output slot instead.
  MoveInCounted,
  /// The fence lands on the compute stream at each group's first step:
  /// the accumulator slot must have drained before the group's first
  /// beta=0 GEMM overwrites it (the recursive inner product's C panels).
  Compute,
};

/// Declarative description of one streaming loop. All callbacks receive the
/// flat step index; engines derive (group, local, buffer slot) themselves so
/// buffer rotation stays next to the buffers it rotates.
struct SlabPlan {
  /// Short engine tag used in the plan description (--explain-plan).
  std::string label;
  index_t steps = 0;
  /// Streamed-input buffer-pool depth; 0 = no input pool (resident inputs).
  /// The fence indexes the pipeline's persistent compute history, so loops
  /// split across several run() calls (left-looking projections) fence
  /// exactly like one long loop.
  int input_slots = 0;
  OutputFence output_fence = OutputFence::None;
  /// Output working-set depth (the §4.1.2 staging pair = 2, baseline = 1).
  index_t output_slots = 1;
  /// Steps per move-out group (recursive inner product: k-slabs per C
  /// panel; everyone else: 1).
  index_t steps_per_group = 1;
  /// Slab-prefetch hit/miss accounting on the pool fence (off for the
  /// left-looking projection loop, which has no prefetch pool semantics).
  bool count_prefetch = true;
  /// Waited (valid-checked) on the compute stream before the run's first
  /// compute — resident operands staged on the H2D stream.
  std::vector<sim::Event> resident_ready;
  /// Region rectangle this step's streamed move-in reads, in the engine's
  /// local coordinates; waits every intersecting opts.streamed_input_regions
  /// event (§4.2). Return nullopt for no region gating.
  std::function<std::optional<std::pair<Slab, Slab>>(index_t step)>
      input_region;
  /// Streamed-input move-in (fenced by the input pool / counted fence).
  std::function<void(MoveInCtx&, index_t step)> move_in;
  /// Output move-in (fenced by the output-slot fence; the outer products'
  /// beta != 0 C slab). Runs after `move_in` on the same stream.
  std::function<void(MoveInCtx&, index_t step)> move_in_output;
  std::function<void(ComputeCtx&, index_t step)> compute;
  /// Per-group drain; fenced behind the group's last compute event.
  std::function<void(MoveOutCtx&, index_t group)> move_out;
  /// Host region the group's move-out wrote (becomes a RegionEvent).
  std::function<std::optional<std::pair<Slab, Slab>>(index_t group)>
      output_region;
};

struct SlabRunResult {
  std::vector<sim::Event> compute_done; ///< one per step
  std::vector<sim::Event> out_done;     ///< one per group with a move-out
  std::vector<RegionEvent> output_regions;
};

/// One-shot three-stage task (panel move-in / factor / drain) on the same
/// streams as the slab loops. Stages are optional; present stages chain
/// in -> comp -> out through graph edges exactly like one slab step.
struct TaskPlan {
  std::vector<sim::Event> move_in_waits; ///< valid-checked, on the H2D stream
  std::function<void(MoveInCtx&)> move_in;
  std::vector<sim::Event> compute_waits; ///< valid-checked, on compute
  std::function<void(ComputeCtx&)> compute;
  std::function<void(MoveOutCtx&)> move_out; ///< fenced behind the compute
  /// Node-label stem in the lowered graph (--explain-plan=dot,
  /// DeviceLost attribution). Defaults to "task".
  std::string label;
};

struct TaskResult {
  sim::Event moved_in;  ///< invalid if the task had no move-in stage
  sim::Event computed;  ///< invalid if the task had no compute stage
  sim::Event moved_out; ///< invalid if the task had no move-out stage
};

class SlabPipeline {
 public:
  /// Creates the underlying task graph (in/compute/out streams in that
  /// order — stream numbering is part of the preserved schedule), opens an
  /// optional trace span, and fences the H2D stream on `wait_before` plus
  /// opts.host_input_ready. `opts` must already be validated (engines call
  /// OocGemmOptions::validate() at their public entry, before OOM
  /// degradation re-plans can legitimately shrink the slab knobs).
  SlabPipeline(sim::Device& dev, const OocGemmOptions& opts,
               std::string span_name = {},
               std::vector<sim::Event> wait_before = {});

  SlabPipeline(const SlabPipeline&) = delete;
  SlabPipeline& operator=(const SlabPipeline&) = delete;

  /// Stages a resident operand: H2D on the move-in stream, returning the
  /// event marking its readiness (a resident_ready candidate).
  sim::Event stage_resident(sim::DeviceMatrixRef dst, sim::HostConstRef src,
                            const std::string& name);

  SlabRunResult run(const SlabPlan& plan);
  TaskResult run_task(const TaskPlan& plan);

  /// Records an event on the H2D stream marking everything enqueued there
  /// so far (resume paths that substitute "already on host" markers).
  sim::Event record_input_marker();

  /// Trace index at construction — the engine's stats window.
  size_t window_begin() const { return graph_.window_begin(); }

  /// Human-readable summary of every plan this pipeline ran, followed by
  /// the lowered task-graph form (node/edge/fence-edge counts);
  /// empty until the first run().
  const std::string& plan_description() const;

  /// Graphviz dump of the lowered graph (--explain-plan=dot).
  std::string dot(const std::string& graph_name = "slab-pipeline") const {
    return graph_.dot(graph_name);
  }

  /// The task graph this pipeline lowers onto. Exposed for equivalence
  /// tests; engines should speak SlabPlan/TaskPlan.
  const TaskGraph& graph() const { return graph_; }

  sim::Device& device() { return graph_.device(); }
  const OocGemmOptions& options() const { return graph_.options(); }

 private:
  TaskGraph graph_;
  /// Compute node of every run() step, across runs — the streamed-input
  /// pool fence indexes it globally.
  std::vector<TaskId> history_;
  std::string plan_description_;
  mutable std::string description_cache_;
};

/// A resident operand of a slab loop: either the caller's device matrix or
/// a host operand staged once through the pipeline's H2D stream.
struct ResidentInput {
  sim::DeviceMatrixRef ref;
  sim::ScopedMatrix owned; ///< set when staged here; freed on scope exit
  sim::Event ready{};
};

/// Stages `op` unless it is already device-resident. `label` names the
/// allocation, `copy_name` the H2D trace op.
ResidentInput stage_operand(SlabPipeline& p, const Operand& op,
                            const std::string& label,
                            const std::string& copy_name);

} // namespace rocqr::ooc
