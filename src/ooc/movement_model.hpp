// Analytic data-movement model of §3.2 of the paper.
//
// All quantities are in *words* (fp32 elements), matching the paper's
// convention. `m` x `n` is the factored matrix, `b` the QR blocksize and
// k = n / b the number of panels.
//
// Two layers are provided for each algorithm and direction:
//  - `*_sum`: the per-iteration/per-level sums exactly as set up in §3.2.1
//    and §3.2.2 (ground truth for the model's own algebra);
//  - the closed forms exactly as printed in the paper.
// For the blocking algorithm the printed closed forms match the sums
// identically (we test this). For the recursive algorithm the paper's
// printed closed form does not simplify exactly from its own sum (a known
// typo-level inconsistency); both are kept, and the tests pin the relation.
#pragma once

#include "common/types.hpp"

namespace rocqr::ooc {

/// Number of panels k = n/b; requires b | n.
index_t panel_count(index_t n, index_t b);

// --- Blocking algorithm (§3.2.1) -------------------------------------------

/// Σ_{i=1..k} [3mb + (2m+b)(n-ib)]
double blocking_h2d_words_sum(index_t m, index_t n, index_t b);
/// (k+2)mn + n²/2 − nb/2   (paper's closed form)
double blocking_h2d_words(index_t m, index_t n, index_t b);

/// Σ_{i=1..k} [mb + b² + (m+b)(n-ib)]
double blocking_d2h_words_sum(index_t m, index_t n, index_t b);
/// ½[(k+1)mn + n² + nb]    (paper's closed form)
double blocking_d2h_words(index_t m, index_t n, index_t b);

// --- Recursive algorithm (§3.2.2) ------------------------------------------

/// mn (deepest level) + Σ_{i=1..log2(k)-1} [2mn + 2^{i-1} b²]
double recursive_h2d_words_sum(index_t m, index_t n, index_t b);
/// 2(log2(k)+1)mn + mn/2 − nb/2   (paper's closed form)
double recursive_h2d_words(index_t m, index_t n, index_t b);

/// Per-level D2H: each of the log2(k) levels returns ~mn/2 of results plus
/// the n²/2 of R blocks.
double recursive_d2h_words_sum(index_t m, index_t n, index_t b);
/// ½·log2(k)·mn + n²/2           (paper's closed form)
double recursive_d2h_words(index_t m, index_t n, index_t b);

} // namespace rocqr::ooc
