#include "ooc/movement_model.hpp"

#include <cmath>

#include "common/error.hpp"

namespace rocqr::ooc {

index_t panel_count(index_t n, index_t b) {
  ROCQR_CHECK(n > 0 && b > 0, "panel_count: n and b must be positive");
  ROCQR_CHECK(n % b == 0, "panel_count: blocksize must divide n");
  return n / b;
}

namespace {

double log2k(index_t n, index_t b) {
  const index_t k = panel_count(n, b);
  ROCQR_CHECK((k & (k - 1)) == 0,
              "recursive movement model: panel count must be a power of two");
  return std::log2(static_cast<double>(k));
}

} // namespace

double blocking_h2d_words_sum(index_t m, index_t n, index_t b) {
  const index_t k = panel_count(n, b);
  const double md = static_cast<double>(m);
  const double nd = static_cast<double>(n);
  const double bd = static_cast<double>(b);
  double total = 0.0;
  for (index_t i = 1; i <= k; ++i) {
    const double rest = nd - static_cast<double>(i) * bd;
    total += 3.0 * md * bd + (2.0 * md + bd) * rest;
  }
  return total;
}

double blocking_h2d_words(index_t m, index_t n, index_t b) {
  const double k = static_cast<double>(panel_count(n, b));
  const double md = static_cast<double>(m);
  const double nd = static_cast<double>(n);
  const double bd = static_cast<double>(b);
  return (k + 2.0) * md * nd + nd * nd / 2.0 - nd * bd / 2.0;
}

double blocking_d2h_words_sum(index_t m, index_t n, index_t b) {
  const index_t k = panel_count(n, b);
  const double md = static_cast<double>(m);
  const double nd = static_cast<double>(n);
  const double bd = static_cast<double>(b);
  double total = 0.0;
  for (index_t i = 1; i <= k; ++i) {
    const double rest = nd - static_cast<double>(i) * bd;
    total += md * bd + bd * bd + (md + bd) * rest;
  }
  return total;
}

double blocking_d2h_words(index_t m, index_t n, index_t b) {
  const double k = static_cast<double>(panel_count(n, b));
  const double md = static_cast<double>(m);
  const double nd = static_cast<double>(n);
  const double bd = static_cast<double>(b);
  return 0.5 * ((k + 1.0) * md * nd + nd * nd + nd * bd);
}

double recursive_h2d_words_sum(index_t m, index_t n, index_t b) {
  const double levels = log2k(n, b);
  const double md = static_cast<double>(m);
  const double nd = static_cast<double>(n);
  const double bd = static_cast<double>(b);
  // Deepest level: every panel streamed once, mn words total.
  double total = md * nd;
  // Each shallower level i performs the two big GEMMs: both operands of the
  // inner and outer products stream once (2mn), plus the level's R blocks.
  for (index_t i = 1; i <= static_cast<index_t>(levels) - 1; ++i) {
    total += 2.0 * md * nd + std::pow(2.0, static_cast<double>(i - 1)) * bd * bd;
  }
  return total;
}

double recursive_h2d_words(index_t m, index_t n, index_t b) {
  const double levels = log2k(n, b);
  const double md = static_cast<double>(m);
  const double nd = static_cast<double>(n);
  const double bd = static_cast<double>(b);
  return 2.0 * (levels + 1.0) * md * nd + md * nd / 2.0 - nd * bd / 2.0;
}

double recursive_d2h_words_sum(index_t m, index_t n, index_t b) {
  const double levels = log2k(n, b);
  const double md = static_cast<double>(m);
  const double nd = static_cast<double>(n);
  // Per level: the updated/factored halves come back (~mn/2); across all
  // levels the R blocks amount to ~n²/2.
  return 0.5 * levels * md * nd + nd * nd / 2.0;
}

double recursive_d2h_words(index_t m, index_t n, index_t b) {
  return recursive_d2h_words_sum(m, n, b);
}

} // namespace rocqr::ooc
