#include "ooc/resilience.hpp"

#include <cmath>
#include <vector>

#include "sim/trace_export.hpp"

namespace rocqr::ooc::detail {

namespace {

// No static Counter* caching here (or anywhere): resolve through the
// registry each call so the pointer cannot go stale across registry
// lifetimes (see count_slab_prefetch in ooc/engine_util.hpp).
telemetry::Counter& transfer_retries_counter() {
  return telemetry::MetricsRegistry::global().counter("transfer_retries");
}

telemetry::Counter& abft_recomputes_counter() {
  return telemetry::MetricsRegistry::global().counter("abft_recomputes");
}

/// Shared retry loop: `enqueue` performs one attempt (throwing TransferError
/// on an injected transient failure).
template <typename Enqueue>
void retry_transfer(sim::Device& dev, const std::string& name,
                    int max_attempts, double backoff_seconds,
                    const Enqueue& enqueue) {
  ROCQR_CHECK(max_attempts >= 1, "transfer retry: max_attempts must be >= 1");
  double backoff = backoff_seconds;
  for (int attempt = 1;; ++attempt) {
    try {
      enqueue();
      return;
    } catch (const TransferError&) {
      if (attempt >= max_attempts) {
        throw FaultBudgetExhausted(
            "transfer retry budget exhausted (" + std::to_string(attempt) +
            " attempts) on '" + name + "'");
      }
      transfer_retries_counter().increment();
      // The failed enqueue consumed no engine time; the backoff is the
      // modeled cost of detecting the failure and re-issuing the copy.
      sim::TraceSpan span(dev, "transfer_retry " + name);
      dev.advance_host_clock(dev.now() + backoff);
      backoff *= 2.0;
    }
  }
}

/// ABFT column-sum verification of C = beta*C0 + alpha*op(A)*op(B).
/// Compares the row sums of the computed C (the check vector C*ones) against
/// a double-precision reference from the downloaded operands, with a
/// tolerance scaled by the absolute-value sums — generous against fp16
/// rounding (~1e-3 relative), tight against injected corruption (>= 1e4).
bool abft_check_passes(sim::Device& dev, blas::Op opa, blas::Op opb,
                       float alpha, sim::DeviceMatrixRef a,
                       sim::DeviceMatrixRef b, float beta,
                       sim::DeviceMatrixRef c, const la::Matrix* c_before) {
  const la::Matrix am = dev.download(a);
  const la::Matrix bm = dev.download(b);
  const la::Matrix cm = dev.download(c);
  const index_t m = c.rows;
  const index_t n = c.cols;
  const index_t k = blas::op_cols(opa, a.rows, a.cols);

  // y = op(B)*ones, ya = |op(B)|*ones (length k).
  std::vector<double> y(static_cast<size_t>(k), 0.0);
  std::vector<double> ya(static_cast<size_t>(k), 0.0);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < k; ++i) {
      const double v = opb == blas::Op::NoTrans ? bm(i, j) : bm(j, i);
      y[static_cast<size_t>(i)] += v;
      ya[static_cast<size_t>(i)] += std::fabs(v);
    }
  }
  for (index_t i = 0; i < m; ++i) {
    double ref = 0.0;
    double scale = 0.0;
    for (index_t j = 0; j < k; ++j) {
      const double v = opa == blas::Op::NoTrans ? am(i, j) : am(j, i);
      ref += v * y[static_cast<size_t>(j)];
      scale += std::fabs(v) * ya[static_cast<size_t>(j)];
    }
    ref *= static_cast<double>(alpha);
    scale = static_cast<double>(std::fabs(alpha)) * scale;
    if (c_before != nullptr) {
      double c0 = 0.0;
      double c0a = 0.0;
      for (index_t j = 0; j < n; ++j) {
        c0 += static_cast<double>((*c_before)(i, j));
        c0a += static_cast<double>(std::fabs((*c_before)(i, j)));
      }
      ref += static_cast<double>(beta) * c0;
      scale += static_cast<double>(std::fabs(beta)) * c0a;
    }
    double row_sum = 0.0;
    for (index_t j = 0; j < n; ++j) row_sum += static_cast<double>(cm(i, j));
    // 5e-2 relative headroom over the ~1e-3 fp16 rounding drift, plus an
    // absolute floor for near-zero rows; injected corruption is >= 1e4.
    const double tol = 5e-2 * scale + 1e-3 * (1.0 + static_cast<double>(n));
    if (std::fabs(row_sum - ref) > tol) return false;
  }
  return true;
}

} // namespace

void copy_h2d_retry(sim::Device& dev, sim::DeviceMatrixRef dst,
                    sim::HostConstRef src, sim::Stream s,
                    const std::string& name, int max_attempts,
                    double backoff_seconds) {
  retry_transfer(dev, name, max_attempts, backoff_seconds,
                 [&] { dev.copy_h2d(dst, src, s, name); });
}

void copy_d2h_retry(sim::Device& dev, sim::HostMutRef dst,
                    sim::DeviceMatrixRef src, sim::Stream s,
                    const std::string& name, int max_attempts,
                    double backoff_seconds) {
  retry_transfer(dev, name, max_attempts, backoff_seconds,
                 [&] { dev.copy_d2h(dst, src, s, name); });
}

void copy_h2d_batched_retry(sim::Device& dev,
                            const std::vector<sim::Device::H2dBatchEntry>& es,
                            sim::Stream s, const std::string& name,
                            int max_attempts, double backoff_seconds) {
  retry_transfer(dev, name, max_attempts, backoff_seconds,
                 [&] { dev.copy_h2d_batched(es, s, name); });
}

void copy_d2h_batched_retry(sim::Device& dev,
                            const std::vector<sim::Device::D2hBatchEntry>& es,
                            sim::Stream s, const std::string& name,
                            int max_attempts, double backoff_seconds) {
  retry_transfer(dev, name, max_attempts, backoff_seconds,
                 [&] { dev.copy_d2h_batched(es, s, name); });
}

void checked_gemm(sim::Device& dev, const OocGemmOptions& opts, blas::Op opa,
                  blas::Op opb, float alpha, sim::DeviceMatrixRef a,
                  sim::DeviceMatrixRef b, float beta, sim::DeviceMatrixRef c,
                  sim::Stream s, const std::string& name) {
  if (!opts.abft || dev.mode() != sim::ExecutionMode::Real) {
    dev.gemm(opa, opb, alpha, a, b, beta, c, opts.precision, s, name);
    return;
  }
  // With beta != 0 the recompute needs the pre-GEMM C restored; snapshot it
  // through the immediate (non-scheduled) download path.
  la::Matrix c_before;
  const bool need_restore = beta != 0.0f;
  if (need_restore) c_before = dev.download(c);

  constexpr int kAbftMaxAttempts = 3;
  dev.gemm(opa, opb, alpha, a, b, beta, c, opts.precision, s, name);
  int attempt = 1;
  while (!abft_check_passes(dev, opa, opb, alpha, a, b, beta, c,
                            need_restore ? &c_before : nullptr)) {
    if (attempt >= kAbftMaxAttempts) {
      throw NumericalError("abft: checksum mismatch persisted after " +
                           std::to_string(attempt) + " attempts in '" + name +
                           "'");
    }
    ++attempt;
    abft_recomputes_counter().increment();
    sim::TraceSpan span(dev, "abft_recompute " + name);
    if (need_restore) dev.upload(c, c_before.view());
    dev.gemm(opa, opb, alpha, a, b, beta, c, opts.precision, s, name);
  }
}

bool degrade_slab_options(OocGemmOptions& opts) {
  if (opts.blocksize <= opts.degrade_min_blocksize) return false;
  opts.blocksize = std::max(opts.degrade_min_blocksize, opts.blocksize / 2);
  if (opts.tile_cols > 1) opts.tile_cols = std::max<index_t>(1, opts.tile_cols / 2);
  if (opts.c_panel_cols > 1) {
    opts.c_panel_cols = std::max<index_t>(1, opts.c_panel_cols / 2);
  }
  if (opts.ramp_start > opts.blocksize) opts.ramp_start = opts.blocksize;
  return true;
}

void count_slab_degradation() {
  telemetry::MetricsRegistry::global().counter("slab_degradations").increment();
}

} // namespace rocqr::ooc::detail
