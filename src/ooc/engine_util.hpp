// Internal helpers shared by the OOC GEMM engines (not public API).
#pragma once

#include "common/telemetry.hpp"
#include "ooc/gemm_engines.hpp"
#include "sim/device.hpp"

namespace rocqr::ooc::detail {

/// Slab prefetch accounting shared by every streaming engine. A *hit* is a
/// streamed-input move-in whose buffer slot was already free (the pipeline
/// ran deep enough); a *miss* is a slot still owned by an in-flight GEMM, so
/// the move-in had to be fenced behind that GEMM's completion event — the
/// H2D link may stall there. The miss count is structural (fences enqueued),
/// not a measured stall time; see ooc.* counters in docs/TELEMETRY.md.
inline void count_slab_prefetch(bool missed) {
  // Resolved through the registry on every call: a function-local static
  // Counter* would pin the counter slot resolved by whichever registry
  // instance was global at first use, going stale if the registry is ever
  // swapped or torn down between in-process test cases.
  telemetry::MetricsRegistry::global()
      .counter(missed ? "ooc.slab_prefetch_misses" : "ooc.slab_prefetch_hits")
      .increment();
}

/// In synchronous mode, the host joins the device after every enqueue —
/// this is the "Synchronous" baseline of Tables 1/2 (no overlap at all).
inline void sync_if(sim::Device& dev, const OocGemmOptions& opts) {
  if (opts.synchronous) dev.synchronize();
}

/// Device-resident storage width for streamed GEMM *inputs*: fp16 when the
/// TensorCore path will consume them (that is what halves the working set in
/// the paper's pipeline), fp32 for the CUDA-core path.
inline sim::StoragePrecision input_storage(const OocGemmOptions& opts) {
  return opts.precision == blas::GemmPrecision::FP16_FP32
             ? sim::StoragePrecision::FP16
             : sim::StoragePrecision::FP32;
}

/// Blocks the engine's move-in stream on the events guarding its host inputs.
inline void wait_host_inputs(sim::Device& dev, sim::Stream in,
                             const OocGemmOptions& opts) {
  for (const sim::Event& e : opts.host_input_ready) {
    if (e.valid()) dev.wait_event(in, e);
  }
}

/// Waits (on the move-in stream) for every streamed-input region event that
/// intersects the [rows x cols] rectangle about to be read. Offsets may be
/// negative after coordinate translation; the signed intersection handles
/// that.
inline void wait_intersecting_regions(sim::Device& dev, sim::Stream in,
                                      const OocGemmOptions& opts, Slab rows,
                                      Slab cols) {
  for (const RegionEvent& r : opts.streamed_input_regions) {
    const bool rows_hit = r.rows.offset < rows.offset + rows.width &&
                          rows.offset < r.rows.offset + r.rows.width;
    const bool cols_hit = r.cols.offset < cols.offset + cols.width &&
                          cols.offset < r.cols.offset + r.cols.width;
    if (rows_hit && cols_hit && r.event.valid()) dev.wait_event(in, r.event);
  }
}

} // namespace rocqr::ooc::detail
