#include <string>

#include "common/error.hpp"
#include "ooc/gemm_engines.hpp"

namespace rocqr::ooc {

namespace {

void check(bool ok, const std::string& what) {
  if (!ok) throw InvalidArgument("OocGemmOptions: " + what);
}

} // namespace

void OocGemmOptions::validate() const {
  check(blocksize > 0, "blocksize must be > 0");
  check(tile_cols >= 0, "tile_cols must be >= 0 (0 = blocksize)");
  check(c_panel_cols >= 0, "c_panel_cols must be >= 0 (0 = unsplit)");
  check(pipeline_depth >= 1,
        "pipeline_depth must be >= 1 (was silently clamped before)");
  if (ramp_up) {
    // Mirrors QrOptions::validate: the ramp knobs only constrain anything
    // when the ramp is on (CLI defaults leave ramp_start large).
    check(ramp_start >= 1, "ramp_start must be >= 1 when ramp_up is on");
    check(ramp_start <= blocksize,
          "ramp_start must be <= blocksize when ramp_up is on");
  }
  check(!(upper_triangle_tiles_only && upper_trapezoid_slabs),
        "upper_triangle_tiles_only and upper_trapezoid_slabs are modes of "
        "different engines; set at most one");
  check(transfer_max_attempts >= 1, "transfer_max_attempts must be >= 1");
  check(transfer_backoff_seconds >= 0.0,
        "transfer_backoff_seconds must be >= 0");
  check(degrade_min_blocksize >= 1, "degrade_min_blocksize must be >= 1");
  if (abft) {
    // The ABFT column-sum check restores and recomputes the C slab in
    // place; the synchronous baseline serializes after every op, which
    // would hide the recompute behind a full device join and double-count
    // it in the tables. Combining them is a config error, not a silently
    // different experiment.
    check(!synchronous, "abft and synchronous are mutually exclusive");
  }
}

} // namespace rocqr::ooc
