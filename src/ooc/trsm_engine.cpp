#include "ooc/trsm_engine.hpp"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "ooc/engine_util.hpp"
#include "ooc/operand.hpp"
#include "ooc/pipeline.hpp"
#include "ooc/resilience.hpp"
#include "sim/scoped_matrix.hpp"
#include "sim/trace_export.hpp"

namespace rocqr::ooc {

using sim::Device;
using sim::DeviceMatrix;
using sim::DeviceMatrixRef;
using sim::Event;
using sim::HostConstRef;
using sim::HostMutRef;
using sim::ScopedMatrix;
using sim::StoragePrecision;

namespace {

/// Base case: the w x w triangle is resident; B's rows [j0, j0+w) stream in
/// column slabs through the device trsm kernel. Runs as a SlabPlan with no
/// streamed-input pool — the counted output-slot fence (the rotating B/X
/// working pair) is the prefetch account. Returns the completion event of
/// the last move-out. Allocations all precede the first d2h, so an injected
/// OOM aborts before any host row has been overwritten and the enclosing
/// degradation wrapper may safely re-run this node.
Event trsm_base_impl(Device& dev, TriSolveKind kind, HostConstRef t,
                     HostConstRef b_in, HostMutRef b_out, index_t j0,
                     index_t w, Event prev, const OocGemmOptions& opts) {
  const index_t nrhs = b_in.cols;
  SlabPipeline pipe(dev, opts, /*span_name=*/{}, {prev});

  ScopedMatrix tri(dev, w, w, StoragePrecision::FP32, "ooc_trsm.T");
  Event tri_ready =
      pipe.stage_resident(tri.get(), host_block(t, j0, j0, w, w), "h2d T");

  const auto slabs = slab_partition(nrhs, std::max<index_t>(opts.blocksize, 1));
  const index_t max_w = max_slab_width(slabs);
  const index_t b_slots = opts.staging_buffer ? 2 : 1;
  std::vector<ScopedMatrix> buf_b;
  buf_b.reserve(static_cast<size_t>(b_slots));
  for (index_t i = 0; i < b_slots; ++i) {
    buf_b.emplace_back(dev, w, max_w, StoragePrecision::FP32, "ooc_trsm.B");
  }

  const Device::TrsmKind device_kind =
      kind == TriSolveKind::LowerUnit   ? Device::TrsmKind::LeftLowerUnit
      : kind == TriSolveKind::UpperTrans ? Device::TrsmKind::LeftUpperTrans
                                         : Device::TrsmKind::LeftUpper;

  SlabPlan plan;
  plan.label = "ooc_trsm.base";
  plan.steps = static_cast<index_t>(slabs.size());
  plan.input_slots = 0; // B streams into the output working pair directly
  plan.output_fence = OutputFence::MoveInCounted;
  plan.output_slots = b_slots;
  plan.resident_ready = {tri_ready};
  plan.move_in = [&](MoveInCtx& ctx, index_t s) {
    const Slab slab = slabs[static_cast<size_t>(s)];
    const DeviceMatrix& bbuf = buf_b[static_cast<size_t>(s % b_slots)].get();
    ctx.h2d(DeviceMatrixRef(bbuf, 0, 0, w, slab.width),
            host_block(b_in, j0, slab.offset, w, slab.width),
            "h2d B[" + std::to_string(s) + "]");
  };
  plan.compute = [&](ComputeCtx& ctx, index_t s) {
    const Slab slab = slabs[static_cast<size_t>(s)];
    const DeviceMatrix& bbuf = buf_b[static_cast<size_t>(s % b_slots)].get();
    ctx.trsm(device_kind, tri.get(), DeviceMatrixRef(bbuf, 0, 0, w, slab.width),
             "trsm[" + std::to_string(s) + "]");
  };
  plan.move_out = [&](MoveOutCtx& ctx, index_t s) {
    const Slab slab = slabs[static_cast<size_t>(s)];
    const DeviceMatrix& bbuf = buf_b[static_cast<size_t>(s % b_slots)].get();
    ctx.d2h(host_block(b_out, j0, slab.offset, w, slab.width),
            DeviceMatrixRef(bbuf, 0, 0, w, slab.width),
            "d2h X[" + std::to_string(s) + "]");
  };

  SlabRunResult run = pipe.run(plan);

  for (auto& buf : buf_b) buf.reset();
  tri.reset();
  return run.out_done.back();
}

/// Each base-case node degrades independently on OOM (the recursion's panel
/// structure is fixed; only the streaming slab width shrinks). The nested
/// outer_product_colwise updates carry their own degradation wrapper.
Event trsm_base(Device& dev, TriSolveKind kind, HostConstRef t,
                HostConstRef b_in, HostMutRef b_out, index_t j0, index_t w,
                Event prev, const OocGemmOptions& opts) {
  return detail::with_oom_degradation(dev, opts, [&](const OocGemmOptions& o) {
    return trsm_base_impl(dev, kind, t, b_in, b_out, j0, w, prev, o);
  });
}

/// Recursive driver over the block rows [j0, j0+w) of the triangle.
Event trsm_recurse(Device& dev, TriSolveKind kind, HostConstRef t,
                   HostConstRef b_in, HostMutRef b_out, index_t j0, index_t w,
                   Event prev, const OocGemmOptions& opts) {
  const index_t bs = std::max<index_t>(opts.blocksize, 1);
  const index_t panels = (w + bs - 1) / bs;
  if (panels <= 1) {
    return trsm_base(dev, kind, t, b_in, b_out, j0, w, prev, opts);
  }
  const index_t h = (panels / 2) * bs;
  const index_t rest = w - h;
  const index_t nrhs = b_in.cols;

  if (kind == TriSolveKind::Upper) {
    // Back substitution runs bottom-up: solve the trailing block, update
    // the leading right-hand sides with U12·X_bottom, solve the top.
    Event bottom =
        trsm_recurse(dev, kind, t, b_in, b_out, j0 + h, rest, prev, opts);
    OocGemmOptions g = opts;
    g.host_input_ready.push_back(bottom);
    const auto update = outer_product_colwise(
        dev, Operand::on_host(host_block(t, j0, j0 + h, h, rest)),
        Operand::on_host(host_block(
            sim::HostConstRef(b_out.data, b_out.rows, b_out.cols, b_out.ld),
            j0 + h, 0, rest, nrhs)),
        host_block(sim::HostConstRef(b_out.data, b_out.rows, b_out.cols,
                                     b_out.ld),
                   j0, 0, h, nrhs),
        host_block(b_out, j0, 0, h, nrhs), g);
    return trsm_recurse(dev, kind, t, b_in, b_out, j0, h, update.done, opts);
  }

  Event top = trsm_recurse(dev, kind, t, b_in, b_out, j0, h, prev, opts);

  // B_bottom -= M · X_top with the off-diagonal block M resident.
  OocGemmOptions g = opts;
  g.outer_opa = kind == TriSolveKind::UpperTrans ? blas::Op::Trans
                                                 : blas::Op::NoTrans;
  g.host_input_ready.push_back(top); // X_top must have landed on the host
  const HostConstRef m_block =
      kind == TriSolveKind::UpperTrans
          ? host_block(t, j0, j0 + h, h, rest)   // R12, used transposed
          : host_block(t, j0 + h, j0, rest, h);  // L21
  const auto update = outer_product_colwise(
      dev, Operand::on_host(m_block),
      Operand::on_host(host_block(
          sim::HostConstRef(b_out.data, b_out.rows, b_out.cols, b_out.ld), j0,
          0, h, nrhs)),
      host_block(sim::HostConstRef(b_out.data, b_out.rows, b_out.cols,
                                   b_out.ld),
                 j0 + h, 0, rest, nrhs),
      host_block(b_out, j0 + h, 0, rest, nrhs), g);

  return trsm_recurse(dev, kind, t, b_in, b_out, j0 + h, rest, update.done,
                      opts);
}

} // namespace

OocGemmStats ooc_trsm(Device& dev, TriSolveKind kind, HostConstRef t,
                      HostConstRef b_in, HostMutRef b_out,
                      const OocGemmOptions& opts) {
  opts.validate();
  ROCQR_CHECK(t.rows == t.cols, "ooc_trsm: triangle must be square");
  ROCQR_CHECK(b_in.rows == t.rows && b_out.rows == t.rows &&
                  b_in.cols == b_out.cols,
              "ooc_trsm: B shape mismatch");
  ROCQR_CHECK(t.rows > 0 && b_in.cols > 0, "ooc_trsm: empty operand");
  // The recursion solves in place in b_out; phantom refs pass through, and
  // Real-mode aliased in/out is the common case. For distinct real buffers,
  // the caller must have copied b_in into b_out (checked cheaply here).
  if (b_in.data != nullptr && b_in.data != b_out.data) {
    throw InvalidArgument(
        "ooc_trsm: b_in and b_out must alias (in-place solve)");
  }

  const size_t window_begin = dev.trace().size();
  sim::TraceSpan span(dev, "ooc_trsm");
  Event done = trsm_recurse(dev, kind, t, b_in, b_out, 0, t.rows, Event{},
                            opts);

  OocGemmStats stats;
  stats.summary = sim::summarize(dev.trace(), window_begin);
  stats.done = done;
  stats.device_result_ready = done;
  stats.steps = (t.rows + opts.blocksize - 1) / std::max<index_t>(opts.blocksize, 1);
  return stats;
}

} // namespace rocqr::ooc
