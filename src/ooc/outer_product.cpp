// Out-of-core "outer product" engines: C -= A·B (the trailing update
// A2 -= Q1·R12), including the §4.1.2 staging-buffer optimization.
//
// Fault tolerance (docs/FAULTS.md): transfers retry with bounded backoff,
// GEMMs are ABFT-checked when opts.abft is on, and the engine body re-plans
// with a halved slab schedule on DeviceOutOfMemory. Buffers are ScopedMatrix
// and every allocation precedes the first device-to-host write, so an
// abandoned attempt leaks nothing and has not touched host data.
#include <string>
#include <vector>

#include "common/error.hpp"
#include "ooc/engine_util.hpp"
#include "ooc/gemm_engines.hpp"
#include "ooc/resilience.hpp"
#include "sim/scoped_matrix.hpp"
#include "sim/trace_export.hpp"

namespace rocqr::ooc {

using blas::Op;
using sim::Device;
using sim::DeviceMatrix;
using sim::DeviceMatrixRef;
using sim::Event;
using sim::HostConstRef;
using sim::HostMutRef;
using sim::ScopedMatrix;
using sim::StoragePrecision;

namespace {

/// Moves a host operand in once (fp16) unless it is already resident.
/// Returns the matrix to use plus the event marking its readiness.
struct ResidentInput {
  DeviceMatrixRef ref;
  ScopedMatrix owned; // valid if we moved it in (freed on scope exit)
  Event ready{};
};

ResidentInput make_resident(Device& dev, const Operand& op, sim::Stream in,
                            const OocGemmOptions& opts, const char* label) {
  ResidentInput r;
  if (op.is_resident()) {
    r.ref = op.device_ref();
    r.ready = op.ready_event();
    return r;
  }
  r.owned = ScopedMatrix(dev, op.rows(), op.cols(),
                         detail::input_storage(opts), label);
  detail::copy_h2d_retry(dev, r.owned.get(), op.host(), in,
                         std::string("h2d ") + label, opts);
  detail::sync_if(dev, opts);
  r.ready = dev.create_event();
  dev.record_event(r.ready, in);
  r.ref = DeviceMatrixRef(r.owned.get());
  return r;
}

OocGemmStats outer_product_recursive_impl(Device& dev, const Operand& a,
                                          const Operand& b, HostConstRef c_in,
                                          HostMutRef c_out,
                                          const OocGemmOptions& opts) {
  ROCQR_CHECK(!a.is_resident(), "outer_product_recursive: A streams from host");
  const bool ta = opts.outer_opa == Op::Trans;
  const index_t m = ta ? a.cols() : a.rows();
  const index_t kk = ta ? a.rows() : a.cols();
  const bool tb = opts.outer_opb == Op::Trans;
  const index_t n = tb ? b.rows() : b.cols();
  ROCQR_CHECK((tb ? b.cols() : b.rows()) == kk,
              "outer_product_recursive: k mismatch");
  ROCQR_CHECK(c_in.rows == m && c_in.cols == n && c_out.rows == m &&
                  c_out.cols == n,
              "outer_product_recursive: C shape mismatch");
  ROCQR_CHECK(m > 0 && n > 0 && kk > 0, "outer_product_recursive: empty operand");
  ROCQR_CHECK(!opts.upper_trapezoid_slabs || m == n,
              "outer_product_recursive: trapezoid slabs need a square C");

  const auto slabs =
      slab_partition(m, opts.blocksize, opts.ramp_up, opts.ramp_start);
  const index_t max_w = max_slab_width(slabs);
  const int depth = detail::effective_depth(opts);

  const size_t window_begin = dev.trace().size();
  sim::TraceSpan span(dev, "outer_product_recursive");
  auto streams = detail::make_streams(dev);
  detail::wait_host_inputs(dev, streams.in, opts);

  // B (the R12 factor produced by the preceding inner product) is resident.
  ResidentInput bres = make_resident(dev, b, streams.in, opts, "outer_rec.B");

  std::vector<ScopedMatrix> buf_a;
  buf_a.reserve(static_cast<size_t>(depth));
  for (int d = 0; d < depth; ++d) {
    // Slabs are stored in host orientation: m-rows x k when A streams by
    // rows, k x m-cols when the transposed operand streams by columns.
    buf_a.emplace_back(dev, ta ? kk : max_w, ta ? max_w : kk,
                       detail::input_storage(opts), "outer_rec.A");
  }
  // C slab working space. The paper's baseline keeps a single buffer ("the
  // same GPU memory space"), which serializes every move-in behind the
  // previous slab's move-out; §4.1.2's extra memory space removes that
  // serialization. We realize it as a rotating pair of working buffers —
  // the next slab prefetches into the second buffer while the current one
  // computes and drains — which is what achieves the paper's ideal bound
  // (first move-in + sum of GEMMs + last move-out, §5.1.2).
  const size_t c_slots = opts.staging_buffer ? 2 : 1;
  std::vector<ScopedMatrix> buf_c;
  buf_c.reserve(c_slots);
  for (size_t i = 0; i < c_slots; ++i) {
    buf_c.emplace_back(dev, max_w, n, StoragePrecision::FP32,
                       i == 0 ? "outer_rec.C" : "outer_rec.Cstage");
  }

  std::vector<Event> gemm_done(slabs.size());
  std::vector<Event> out_done(slabs.size());
  std::vector<RegionEvent> output_regions;

  const bool trapezoid = opts.upper_trapezoid_slabs;

  for (size_t s = 0; s < slabs.size(); ++s) {
    const Slab slab = slabs[s];
    const size_t slot = s % static_cast<size_t>(depth);
    const DeviceMatrix& cbuf = buf_c[s % c_slots].get();
    // Trapezoid mode (symmetric updates): only columns at or right of the
    // slab's diagonal block are touched.
    const index_t col0 = trapezoid ? slab.offset : 0;
    const index_t cw = n - col0;

    detail::count_slab_prefetch(s >= static_cast<size_t>(depth));
    if (s >= static_cast<size_t>(depth)) {
      dev.wait_event(streams.in, gemm_done[s - static_cast<size_t>(depth)]);
    }
    detail::wait_intersecting_regions(dev, streams.in, opts,
                                      ta ? Slab{0, kk} : slab,
                                      ta ? slab : Slab{col0, cw});
    const DeviceMatrixRef a_slab =
        ta ? DeviceMatrixRef(buf_a[slot].get(), 0, 0, kk, slab.width)
           : DeviceMatrixRef(buf_a[slot].get(), 0, 0, slab.width, kk);
    detail::copy_h2d_retry(
        dev, a_slab,
        ta ? host_block(a.host(), 0, slab.offset, kk, slab.width)
           : host_block(a.host(), slab.offset, 0, slab.width, kk),
        streams.in, "h2d A[" + std::to_string(s) + "]", opts);
    detail::sync_if(dev, opts);

    // The C buffer becomes writable once its previous slab's move-out
    // finished — one slab ago with a single buffer (fully serialized),
    // two slabs ago with the optimization's rotating pair.
    if (s >= c_slots) {
      dev.wait_event(streams.in, out_done[s - c_slots]);
    }
    if (opts.beta != 0.0f) { // beta == 0: C is write-only, skip the move-in
      detail::copy_h2d_retry(dev, DeviceMatrixRef(cbuf, 0, 0, slab.width, cw),
                             host_block(c_in, slab.offset, col0, slab.width,
                                        cw),
                             streams.in, "h2d C[" + std::to_string(s) + "]",
                             opts);
      detail::sync_if(dev, opts);
    }

    Event moved_in = dev.create_event();
    dev.record_event(moved_in, streams.in);
    dev.wait_event(streams.comp, moved_in);
    if (s == 0 && bres.ready.valid()) dev.wait_event(streams.comp, bres.ready);
    const DeviceMatrixRef b_ref =
        trapezoid ? (opts.outer_opb == Op::Trans
                         ? bres.ref.block(col0, 0, cw, kk)
                         : bres.ref.block(0, col0, kk, cw))
                  : bres.ref;
    detail::checked_gemm(dev, opts, opts.outer_opa, opts.outer_opb,
                         opts.alpha, a_slab, b_ref, opts.beta,
                         DeviceMatrixRef(cbuf, 0, 0, slab.width, cw),
                         streams.comp, "gemm C[" + std::to_string(s) + "]");
    detail::sync_if(dev, opts);
    gemm_done[s] = dev.create_event();
    dev.record_event(gemm_done[s], streams.comp);

    dev.wait_event(streams.out, gemm_done[s]);
    detail::copy_d2h_retry(dev,
                           host_block(c_out, slab.offset, col0, slab.width,
                                      cw),
                           DeviceMatrixRef(cbuf, 0, 0, slab.width, cw),
                           streams.out, "d2h C[" + std::to_string(s) + "]",
                           opts);
    detail::sync_if(dev, opts);
    out_done[s] = dev.create_event();
    dev.record_event(out_done[s], streams.out);
    output_regions.push_back(
        RegionEvent{Slab{slab.offset, slab.width}, Slab{col0, cw},
                    out_done[s]});
  }

  for (auto& buf : buf_a) buf.reset();
  for (auto& buf : buf_c) buf.reset();
  bres.owned.reset();

  OocGemmStats stats;
  stats.summary = sim::summarize(dev.trace(), window_begin);
  stats.steps = static_cast<index_t>(slabs.size());
  stats.done = out_done.back();
  stats.output_ready = std::move(output_regions);
  stats.device_result_ready = gemm_done.back();
  stats.steady_gemm_rate = dev.model().gemm_rate(opts.outer_opa, opts.blocksize,
                                                 n, kk, opts.precision);
  stats.slab_h2d_seconds =
      dev.model().h2d_seconds(4 * opts.blocksize * kk) +
      dev.model().h2d_seconds(4 * opts.blocksize * n);
  stats.slab_gemm_seconds = dev.model().gemm_seconds(
      Op::NoTrans, opts.blocksize, n, kk, opts.precision);
  stats.slab_d2h_seconds = dev.model().d2h_seconds(4 * opts.blocksize * n);
  return stats;
}

OocGemmStats outer_product_colwise_impl(Device& dev, const Operand& a,
                                        const Operand& b, HostConstRef c_in,
                                        HostMutRef c_out,
                                        const OocGemmOptions& opts) {
  ROCQR_CHECK(!b.is_resident(), "outer_product_colwise: B streams from host");
  const bool ta = opts.outer_opa == Op::Trans;
  const index_t m = ta ? a.cols() : a.rows();
  const index_t kk = ta ? a.rows() : a.cols();
  const index_t n = b.cols();
  ROCQR_CHECK(b.rows() == kk, "outer_product_colwise: k mismatch");
  ROCQR_CHECK(opts.outer_opb == Op::NoTrans,
              "outer_product_colwise: op(B) not supported (B streams)");
  ROCQR_CHECK(c_in.rows == m && c_in.cols == n && c_out.rows == m &&
                  c_out.cols == n,
              "outer_product_colwise: C shape mismatch");
  ROCQR_CHECK(m > 0 && n > 0 && kk > 0, "outer_product_colwise: empty operand");

  const auto slabs =
      slab_partition(n, opts.blocksize, opts.ramp_up, opts.ramp_start);
  const index_t max_w = max_slab_width(slabs);
  const int depth = detail::effective_depth(opts);

  const size_t window_begin = dev.trace().size();
  sim::TraceSpan span(dev, "outer_product_colwise");
  auto streams = detail::make_streams(dev);
  detail::wait_host_inputs(dev, streams.in, opts);

  ResidentInput ares = make_resident(dev, a, streams.in, opts, "outer_col.A");
  const DeviceMatrixRef a_ref = ares.ref;

  std::vector<ScopedMatrix> buf_b;
  buf_b.reserve(static_cast<size_t>(depth));
  for (int d = 0; d < depth; ++d) {
    buf_b.emplace_back(dev, kk, max_w, detail::input_storage(opts),
                       "outer_col.B");
  }
  const size_t c_slots = opts.staging_buffer ? 2 : 1;
  std::vector<ScopedMatrix> buf_c;
  buf_c.reserve(c_slots);
  for (size_t i = 0; i < c_slots; ++i) {
    buf_c.emplace_back(dev, m, max_w, StoragePrecision::FP32,
                       i == 0 ? "outer_col.C" : "outer_col.Cstage");
  }

  std::vector<Event> gemm_done(slabs.size());
  std::vector<Event> out_done(slabs.size());
  std::vector<RegionEvent> output_regions;

  for (size_t s = 0; s < slabs.size(); ++s) {
    const Slab slab = slabs[s];
    const size_t slot = s % static_cast<size_t>(depth);
    const DeviceMatrix& cbuf = buf_c[s % c_slots].get();

    detail::count_slab_prefetch(s >= static_cast<size_t>(depth));
    if (s >= static_cast<size_t>(depth)) {
      dev.wait_event(streams.in, gemm_done[s - static_cast<size_t>(depth)]);
    }
    detail::wait_intersecting_regions(dev, streams.in, opts, Slab{0, m},
                                      slab);
    detail::copy_h2d_retry(dev,
                           DeviceMatrixRef(buf_b[slot].get(), 0, 0, kk,
                                           slab.width),
                           host_block(b.host(), 0, slab.offset, kk, slab.width),
                           streams.in, "h2d B[" + std::to_string(s) + "]",
                           opts);
    detail::sync_if(dev, opts);
    if (s >= c_slots) dev.wait_event(streams.in, out_done[s - c_slots]);
    if (opts.beta != 0.0f) {
      detail::copy_h2d_retry(dev, DeviceMatrixRef(cbuf, 0, 0, m, slab.width),
                             host_block(c_in, 0, slab.offset, m, slab.width),
                             streams.in, "h2d C[" + std::to_string(s) + "]",
                             opts);
      detail::sync_if(dev, opts);
    }

    Event moved_in = dev.create_event();
    dev.record_event(moved_in, streams.in);
    dev.wait_event(streams.comp, moved_in);
    if (s == 0 && ares.ready.valid()) dev.wait_event(streams.comp, ares.ready);
    detail::checked_gemm(dev, opts, opts.outer_opa, Op::NoTrans, opts.alpha,
                         a_ref,
                         DeviceMatrixRef(buf_b[slot].get(), 0, 0, kk,
                                         slab.width),
                         opts.beta, DeviceMatrixRef(cbuf, 0, 0, m, slab.width),
                         streams.comp, "gemm C[" + std::to_string(s) + "]");
    detail::sync_if(dev, opts);
    gemm_done[s] = dev.create_event();
    dev.record_event(gemm_done[s], streams.comp);

    dev.wait_event(streams.out, gemm_done[s]);
    detail::copy_d2h_retry(dev, host_block(c_out, 0, slab.offset, m, slab.width),
                           DeviceMatrixRef(cbuf, 0, 0, m, slab.width),
                           streams.out, "d2h C[" + std::to_string(s) + "]",
                           opts);
    detail::sync_if(dev, opts);
    out_done[s] = dev.create_event();
    dev.record_event(out_done[s], streams.out);
    output_regions.push_back(
        RegionEvent{Slab{0, m}, Slab{slab.offset, slab.width}, out_done[s]});
  }

  for (auto& buf : buf_b) buf.reset();
  for (auto& buf : buf_c) buf.reset();
  ares.owned.reset();

  OocGemmStats stats;
  stats.summary = sim::summarize(dev.trace(), window_begin);
  stats.steps = static_cast<index_t>(slabs.size());
  stats.done = out_done.back();
  stats.output_ready = std::move(output_regions);
  stats.device_result_ready = gemm_done.back();
  stats.steady_gemm_rate =
      dev.model().gemm_rate(opts.outer_opa, m, opts.blocksize, kk, opts.precision);
  stats.slab_h2d_seconds = dev.model().h2d_seconds(4 * opts.blocksize * kk) +
                           dev.model().h2d_seconds(4 * opts.blocksize * m);
  stats.slab_gemm_seconds = dev.model().gemm_seconds(
      opts.outer_opa, m, opts.blocksize, kk, opts.precision);
  stats.slab_d2h_seconds = dev.model().d2h_seconds(4 * opts.blocksize * m);
  return stats;
}

OocGemmStats outer_product_blocking_impl(Device& dev, const Operand& a,
                                         const Operand& b, HostConstRef c_in,
                                         HostMutRef c_out,
                                         const OocGemmOptions& opts) {
  const bool ta = opts.outer_opa == Op::Trans;
  const index_t m = ta ? a.cols() : a.rows();
  const index_t kk = ta ? a.rows() : a.cols();
  const bool tb = opts.outer_opb == Op::Trans;
  const index_t n = tb ? b.rows() : b.cols();
  ROCQR_CHECK((tb ? b.cols() : b.rows()) == kk,
              "outer_product_blocking: k mismatch");
  ROCQR_CHECK(c_in.rows == m && c_in.cols == n && c_out.rows == m &&
                  c_out.cols == n,
              "outer_product_blocking: C shape mismatch");
  ROCQR_CHECK(m > 0 && n > 0 && kk > 0, "outer_product_blocking: empty operand");

  const index_t b1 = opts.blocksize;
  const index_t b2 = opts.tile_cols > 0 ? opts.tile_cols : opts.blocksize;
  const auto row_tiles = slab_partition(m, b1);
  const auto col_tiles = slab_partition(n, b2);

  const size_t window_begin = dev.trace().size();
  sim::TraceSpan span(dev, "outer_product_blocking");
  auto streams = detail::make_streams(dev);
  detail::wait_host_inputs(dev, streams.in, opts);

  // Both inputs are tall-and-skinny and stay resident (§3.3.2).
  ResidentInput ares = make_resident(dev, a, streams.in, opts, "outer_blk.A");
  ResidentInput bres = make_resident(dev, b, streams.in, opts, "outer_blk.B");

  // C tile working space: a rotating pair with the §4.1.2 optimization so
  // tile t+1 prefetches while tile t computes/drains; a single buffer — the
  // paper's baseline — serializes move-ins behind move-outs.
  const size_t c_slots = opts.staging_buffer ? 2 : 1;
  std::vector<ScopedMatrix> buf_c;
  buf_c.reserve(c_slots);
  for (size_t i = 0; i < c_slots; ++i) {
    buf_c.emplace_back(dev, b1, b2, StoragePrecision::FP32,
                       i == 0 ? "outer_blk.C" : "outer_blk.Cstage");
  }

  const size_t tiles = row_tiles.size() * col_tiles.size();
  std::vector<Event> gemm_done(tiles);
  std::vector<Event> out_done(tiles);
  std::vector<RegionEvent> output_regions;

  size_t t = 0;
  for (const Slab& rt : row_tiles) {
    for (const Slab& ct : col_tiles) {
      // Symmetric-update mode: skip tiles entirely below the diagonal.
      if (opts.upper_triangle_tiles_only &&
          ct.offset + ct.width <= rt.offset) {
        continue;
      }
      const DeviceMatrix& cbuf = buf_c[t % c_slots].get();
      detail::count_slab_prefetch(t >= c_slots);
      if (t >= c_slots) {
        dev.wait_event(streams.in, out_done[t - c_slots]);
      }
      detail::wait_intersecting_regions(dev, streams.in, opts, rt, ct);
      if (opts.beta != 0.0f) {
        detail::copy_h2d_retry(dev,
                               DeviceMatrixRef(cbuf, 0, 0, rt.width, ct.width),
                               host_block(c_in, rt.offset, ct.offset, rt.width,
                                          ct.width),
                               streams.in, "h2d C[" + std::to_string(t) + "]",
                               opts);
        detail::sync_if(dev, opts);
      }
      Event moved_in = dev.create_event();
      dev.record_event(moved_in, streams.in);

      dev.wait_event(streams.comp, moved_in);
      if (t == 0) {
        if (ares.ready.valid()) dev.wait_event(streams.comp, ares.ready);
        if (bres.ready.valid()) dev.wait_event(streams.comp, bres.ready);
      }
      const DeviceMatrixRef a_tile =
          ta ? ares.ref.block(0, rt.offset, kk, rt.width)
             : ares.ref.block(rt.offset, 0, rt.width, kk);
      const DeviceMatrixRef b_tile =
          tb ? bres.ref.block(ct.offset, 0, ct.width, kk)
             : bres.ref.block(0, ct.offset, kk, ct.width);
      detail::checked_gemm(dev, opts, opts.outer_opa, opts.outer_opb,
                           opts.alpha, a_tile, b_tile, opts.beta,
                           DeviceMatrixRef(cbuf, 0, 0, rt.width, ct.width),
                           streams.comp, "gemm C[" + std::to_string(t) + "]");
      detail::sync_if(dev, opts);
      gemm_done[t] = dev.create_event();
      dev.record_event(gemm_done[t], streams.comp);

      dev.wait_event(streams.out, gemm_done[t]);
      detail::copy_d2h_retry(
          dev, host_block(c_out, rt.offset, ct.offset, rt.width, ct.width),
          DeviceMatrixRef(cbuf, 0, 0, rt.width, ct.width), streams.out,
          "d2h C[" + std::to_string(t) + "]", opts);
      detail::sync_if(dev, opts);
      out_done[t] = dev.create_event();
      dev.record_event(out_done[t], streams.out);
      output_regions.push_back(RegionEvent{Slab{rt.offset, rt.width},
                                           Slab{ct.offset, ct.width},
                                           out_done[t]});
      ++t;
    }
  }

  for (auto& buf : buf_c) buf.reset();
  ares.owned.reset();
  bres.owned.reset();

  // With the triangular filter some pre-sized slots were never used.
  gemm_done.resize(t);
  out_done.resize(t);
  ROCQR_CHECK(t > 0, "outer_product_blocking: no tiles processed");

  OocGemmStats stats;
  stats.summary = sim::summarize(dev.trace(), window_begin);
  stats.steps = static_cast<index_t>(t);
  stats.done = out_done.back();
  stats.output_ready = std::move(output_regions);
  stats.device_result_ready = gemm_done.back();
  stats.steady_gemm_rate =
      dev.model().gemm_rate(opts.outer_opa, b1, b2, kk, opts.precision);
  stats.slab_h2d_seconds = dev.model().h2d_seconds(4 * b1 * b2);
  stats.slab_gemm_seconds =
      dev.model().gemm_seconds(Op::NoTrans, b1, b2, kk, opts.precision);
  stats.slab_d2h_seconds = dev.model().d2h_seconds(4 * b1 * b2);
  return stats;
}

} // namespace

OocGemmStats outer_product_recursive(Device& dev, const Operand& a,
                                     const Operand& b, HostConstRef c_in,
                                     HostMutRef c_out,
                                     const OocGemmOptions& opts) {
  return detail::with_oom_degradation(dev, opts, [&](const OocGemmOptions& o) {
    return outer_product_recursive_impl(dev, a, b, c_in, c_out, o);
  });
}

OocGemmStats outer_product_colwise(Device& dev, const Operand& a,
                                   const Operand& b, HostConstRef c_in,
                                   HostMutRef c_out,
                                   const OocGemmOptions& opts) {
  return detail::with_oom_degradation(dev, opts, [&](const OocGemmOptions& o) {
    return outer_product_colwise_impl(dev, a, b, c_in, c_out, o);
  });
}

OocGemmStats outer_product_blocking(Device& dev, const Operand& a,
                                    const Operand& b, HostConstRef c_in,
                                    HostMutRef c_out,
                                    const OocGemmOptions& opts) {
  return detail::with_oom_degradation(dev, opts, [&](const OocGemmOptions& o) {
    return outer_product_blocking_impl(dev, a, b, c_in, c_out, o);
  });
}

} // namespace rocqr::ooc
