// Out-of-core "outer product" engines: C -= A·B (the trailing update
// A2 -= Q1·R12), including the §4.1.2 staging-buffer optimization.
//
// Each engine is a SlabPlan on the slab-pipeline executor (ooc/pipeline.hpp):
// the executor owns streams, the input-pool and §4.1.2 output-slot fences,
// region waits, retry/ABFT and prefetch accounting; this file keeps the
// operand geometry, the rotating buffer pools, and the trapezoid/triangular
// filters. OOM re-planning wraps each body — every allocation precedes the
// first device-to-host write, so an abandoned attempt has not touched host
// data.
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "ooc/engine_util.hpp"
#include "ooc/gemm_engines.hpp"
#include "ooc/pipeline.hpp"
#include "ooc/resilience.hpp"
#include "sim/scoped_matrix.hpp"

namespace rocqr::ooc {

using blas::Op;
using sim::Device;
using sim::DeviceMatrix;
using sim::DeviceMatrixRef;
using sim::Event;
using sim::HostConstRef;
using sim::HostMutRef;
using sim::ScopedMatrix;
using sim::StoragePrecision;

namespace {

OocGemmStats outer_product_recursive_impl(Device& dev, const Operand& a,
                                          const Operand& b, HostConstRef c_in,
                                          HostMutRef c_out,
                                          const OocGemmOptions& opts) {
  ROCQR_CHECK(!a.is_resident(), "outer_product_recursive: A streams from host");
  const bool ta = opts.outer_opa == Op::Trans;
  const index_t m = ta ? a.cols() : a.rows();
  const index_t kk = ta ? a.rows() : a.cols();
  const bool tb = opts.outer_opb == Op::Trans;
  const index_t n = tb ? b.rows() : b.cols();
  ROCQR_CHECK((tb ? b.cols() : b.rows()) == kk,
              "outer_product_recursive: k mismatch");
  ROCQR_CHECK(c_in.rows == m && c_in.cols == n && c_out.rows == m &&
                  c_out.cols == n,
              "outer_product_recursive: C shape mismatch");
  ROCQR_CHECK(m > 0 && n > 0 && kk > 0, "outer_product_recursive: empty operand");
  ROCQR_CHECK(!opts.upper_trapezoid_slabs || m == n,
              "outer_product_recursive: trapezoid slabs need a square C");

  const auto slabs =
      slab_partition(m, opts.blocksize, opts.ramp_up, opts.ramp_start);
  const index_t max_w = max_slab_width(slabs);
  const int depth = opts.pipeline_depth;

  SlabPipeline pipe(dev, opts, "outer_product_recursive");

  // B (the R12 factor produced by the preceding inner product) is resident.
  ResidentInput bres = stage_operand(pipe, b, "outer_rec.B", "h2d outer_rec.B");

  std::vector<ScopedMatrix> buf_a;
  buf_a.reserve(static_cast<size_t>(depth));
  for (int d = 0; d < depth; ++d) {
    // Slabs are stored in host orientation: m-rows x k when A streams by
    // rows, k x m-cols when the transposed operand streams by columns.
    buf_a.emplace_back(dev, ta ? kk : max_w, ta ? max_w : kk,
                       detail::input_storage(opts), "outer_rec.A");
  }
  // C slab working space. The paper's baseline keeps a single buffer ("the
  // same GPU memory space"), which serializes every move-in behind the
  // previous slab's move-out; §4.1.2's extra memory space removes that
  // serialization. We realize it as a rotating pair of working buffers —
  // the next slab prefetches into the second buffer while the current one
  // computes and drains — which is what achieves the paper's ideal bound
  // (first move-in + sum of GEMMs + last move-out, §5.1.2).
  const index_t c_slots = opts.staging_buffer ? 2 : 1;
  std::vector<ScopedMatrix> buf_c;
  buf_c.reserve(static_cast<size_t>(c_slots));
  for (index_t i = 0; i < c_slots; ++i) {
    buf_c.emplace_back(dev, max_w, n, StoragePrecision::FP32,
                       i == 0 ? "outer_rec.C" : "outer_rec.Cstage");
  }

  const bool trapezoid = opts.upper_trapezoid_slabs;
  // Trapezoid mode (symmetric updates): only columns at or right of the
  // slab's diagonal block are touched.
  const auto slab_col0 = [&](index_t s) {
    return trapezoid ? slabs[static_cast<size_t>(s)].offset : index_t{0};
  };

  SlabPlan plan;
  plan.label = "outer_product_recursive";
  plan.steps = static_cast<index_t>(slabs.size());
  plan.input_slots = depth;
  plan.output_fence = OutputFence::MoveIn;
  plan.output_slots = c_slots;
  plan.resident_ready = {bres.ready};
  plan.input_region = [&](index_t s) {
    const Slab slab = slabs[static_cast<size_t>(s)];
    const index_t col0 = slab_col0(s);
    return std::make_optional(
        ta ? std::make_pair(Slab{0, kk}, slab)
           : std::make_pair(slab, Slab{col0, n - col0}));
  };
  plan.move_in = [&](MoveInCtx& ctx, index_t s) {
    const Slab slab = slabs[static_cast<size_t>(s)];
    const size_t slot = static_cast<size_t>(s % depth);
    const DeviceMatrixRef a_slab =
        ta ? DeviceMatrixRef(buf_a[slot].get(), 0, 0, kk, slab.width)
           : DeviceMatrixRef(buf_a[slot].get(), 0, 0, slab.width, kk);
    ctx.h2d(a_slab,
            ta ? host_block(a.host(), 0, slab.offset, kk, slab.width)
               : host_block(a.host(), slab.offset, 0, slab.width, kk),
            "h2d A[" + std::to_string(s) + "]");
  };
  plan.move_in_output = [&](MoveInCtx& ctx, index_t s) {
    if (opts.beta == 0.0f) return; // C is write-only, skip the move-in
    const Slab slab = slabs[static_cast<size_t>(s)];
    const index_t col0 = slab_col0(s);
    const DeviceMatrix& cbuf = buf_c[static_cast<size_t>(s % c_slots)].get();
    ctx.h2d(DeviceMatrixRef(cbuf, 0, 0, slab.width, n - col0),
            host_block(c_in, slab.offset, col0, slab.width, n - col0),
            "h2d C[" + std::to_string(s) + "]");
  };
  plan.compute = [&](ComputeCtx& ctx, index_t s) {
    const Slab slab = slabs[static_cast<size_t>(s)];
    const size_t slot = static_cast<size_t>(s % depth);
    const index_t col0 = slab_col0(s);
    const index_t cw = n - col0;
    const DeviceMatrix& cbuf = buf_c[static_cast<size_t>(s % c_slots)].get();
    const DeviceMatrixRef a_slab =
        ta ? DeviceMatrixRef(buf_a[slot].get(), 0, 0, kk, slab.width)
           : DeviceMatrixRef(buf_a[slot].get(), 0, 0, slab.width, kk);
    const DeviceMatrixRef b_ref =
        trapezoid ? (opts.outer_opb == Op::Trans
                         ? bres.ref.block(col0, 0, cw, kk)
                         : bres.ref.block(0, col0, kk, cw))
                  : bres.ref;
    ctx.gemm(opts.outer_opa, opts.outer_opb, opts.alpha, a_slab, b_ref,
             opts.beta, DeviceMatrixRef(cbuf, 0, 0, slab.width, cw),
             "gemm C[" + std::to_string(s) + "]");
  };
  plan.move_out = [&](MoveOutCtx& ctx, index_t s) {
    const Slab slab = slabs[static_cast<size_t>(s)];
    const index_t col0 = slab_col0(s);
    const DeviceMatrix& cbuf = buf_c[static_cast<size_t>(s % c_slots)].get();
    ctx.d2h(host_block(c_out, slab.offset, col0, slab.width, n - col0),
            DeviceMatrixRef(cbuf, 0, 0, slab.width, n - col0),
            "d2h C[" + std::to_string(s) + "]");
  };
  plan.output_region = [&](index_t s) {
    const Slab slab = slabs[static_cast<size_t>(s)];
    const index_t col0 = slab_col0(s);
    return std::make_optional(std::make_pair(Slab{slab.offset, slab.width},
                                             Slab{col0, n - col0}));
  };

  SlabRunResult run = pipe.run(plan);

  for (auto& buf : buf_a) buf.reset();
  for (auto& buf : buf_c) buf.reset();
  bres.owned.reset();

  OocGemmStats stats;
  stats.summary = sim::summarize(dev.trace(), pipe.window_begin());
  stats.steps = static_cast<index_t>(slabs.size());
  stats.done = run.out_done.back();
  stats.output_ready = std::move(run.output_regions);
  stats.device_result_ready = run.compute_done.back();
  stats.plan = pipe.plan_description();
  stats.steady_gemm_rate = dev.model().gemm_rate(opts.outer_opa, opts.blocksize,
                                                 n, kk, opts.precision);
  stats.slab_h2d_seconds =
      dev.model().h2d_seconds(4 * opts.blocksize * kk) +
      dev.model().h2d_seconds(4 * opts.blocksize * n);
  stats.slab_gemm_seconds = dev.model().gemm_seconds(
      Op::NoTrans, opts.blocksize, n, kk, opts.precision);
  stats.slab_d2h_seconds = dev.model().d2h_seconds(4 * opts.blocksize * n);
  return stats;
}

OocGemmStats outer_product_colwise_impl(Device& dev, const Operand& a,
                                        const Operand& b, HostConstRef c_in,
                                        HostMutRef c_out,
                                        const OocGemmOptions& opts) {
  ROCQR_CHECK(!b.is_resident(), "outer_product_colwise: B streams from host");
  const bool ta = opts.outer_opa == Op::Trans;
  const index_t m = ta ? a.cols() : a.rows();
  const index_t kk = ta ? a.rows() : a.cols();
  const index_t n = b.cols();
  ROCQR_CHECK(b.rows() == kk, "outer_product_colwise: k mismatch");
  ROCQR_CHECK(opts.outer_opb == Op::NoTrans,
              "outer_product_colwise: op(B) not supported (B streams)");
  ROCQR_CHECK(c_in.rows == m && c_in.cols == n && c_out.rows == m &&
                  c_out.cols == n,
              "outer_product_colwise: C shape mismatch");
  ROCQR_CHECK(m > 0 && n > 0 && kk > 0, "outer_product_colwise: empty operand");

  const auto slabs =
      slab_partition(n, opts.blocksize, opts.ramp_up, opts.ramp_start);
  const index_t max_w = max_slab_width(slabs);
  const int depth = opts.pipeline_depth;

  SlabPipeline pipe(dev, opts, "outer_product_colwise");

  ResidentInput ares = stage_operand(pipe, a, "outer_col.A", "h2d outer_col.A");
  const DeviceMatrixRef a_ref = ares.ref;

  std::vector<ScopedMatrix> buf_b;
  buf_b.reserve(static_cast<size_t>(depth));
  for (int d = 0; d < depth; ++d) {
    buf_b.emplace_back(dev, kk, max_w, detail::input_storage(opts),
                       "outer_col.B");
  }
  const index_t c_slots = opts.staging_buffer ? 2 : 1;
  std::vector<ScopedMatrix> buf_c;
  buf_c.reserve(static_cast<size_t>(c_slots));
  for (index_t i = 0; i < c_slots; ++i) {
    buf_c.emplace_back(dev, m, max_w, StoragePrecision::FP32,
                       i == 0 ? "outer_col.C" : "outer_col.Cstage");
  }

  SlabPlan plan;
  plan.label = "outer_product_colwise";
  plan.steps = static_cast<index_t>(slabs.size());
  plan.input_slots = depth;
  plan.output_fence = OutputFence::MoveIn;
  plan.output_slots = c_slots;
  plan.resident_ready = {ares.ready};
  plan.input_region = [&](index_t s) {
    return std::make_optional(
        std::make_pair(Slab{0, m}, slabs[static_cast<size_t>(s)]));
  };
  plan.move_in = [&](MoveInCtx& ctx, index_t s) {
    const Slab slab = slabs[static_cast<size_t>(s)];
    const size_t slot = static_cast<size_t>(s % depth);
    ctx.h2d(DeviceMatrixRef(buf_b[slot].get(), 0, 0, kk, slab.width),
            host_block(b.host(), 0, slab.offset, kk, slab.width),
            "h2d B[" + std::to_string(s) + "]");
  };
  plan.move_in_output = [&](MoveInCtx& ctx, index_t s) {
    if (opts.beta == 0.0f) return;
    const Slab slab = slabs[static_cast<size_t>(s)];
    const DeviceMatrix& cbuf = buf_c[static_cast<size_t>(s % c_slots)].get();
    ctx.h2d(DeviceMatrixRef(cbuf, 0, 0, m, slab.width),
            host_block(c_in, 0, slab.offset, m, slab.width),
            "h2d C[" + std::to_string(s) + "]");
  };
  plan.compute = [&](ComputeCtx& ctx, index_t s) {
    const Slab slab = slabs[static_cast<size_t>(s)];
    const size_t slot = static_cast<size_t>(s % depth);
    const DeviceMatrix& cbuf = buf_c[static_cast<size_t>(s % c_slots)].get();
    ctx.gemm(opts.outer_opa, Op::NoTrans, opts.alpha, a_ref,
             DeviceMatrixRef(buf_b[slot].get(), 0, 0, kk, slab.width),
             opts.beta, DeviceMatrixRef(cbuf, 0, 0, m, slab.width),
             "gemm C[" + std::to_string(s) + "]");
  };
  plan.move_out = [&](MoveOutCtx& ctx, index_t s) {
    const Slab slab = slabs[static_cast<size_t>(s)];
    const DeviceMatrix& cbuf = buf_c[static_cast<size_t>(s % c_slots)].get();
    ctx.d2h(host_block(c_out, 0, slab.offset, m, slab.width),
            DeviceMatrixRef(cbuf, 0, 0, m, slab.width),
            "d2h C[" + std::to_string(s) + "]");
  };
  plan.output_region = [&](index_t s) {
    const Slab slab = slabs[static_cast<size_t>(s)];
    return std::make_optional(
        std::make_pair(Slab{0, m}, Slab{slab.offset, slab.width}));
  };

  SlabRunResult run = pipe.run(plan);

  for (auto& buf : buf_b) buf.reset();
  for (auto& buf : buf_c) buf.reset();
  ares.owned.reset();

  OocGemmStats stats;
  stats.summary = sim::summarize(dev.trace(), pipe.window_begin());
  stats.steps = static_cast<index_t>(slabs.size());
  stats.done = run.out_done.back();
  stats.output_ready = std::move(run.output_regions);
  stats.device_result_ready = run.compute_done.back();
  stats.plan = pipe.plan_description();
  stats.steady_gemm_rate =
      dev.model().gemm_rate(opts.outer_opa, m, opts.blocksize, kk, opts.precision);
  stats.slab_h2d_seconds = dev.model().h2d_seconds(4 * opts.blocksize * kk) +
                           dev.model().h2d_seconds(4 * opts.blocksize * m);
  stats.slab_gemm_seconds = dev.model().gemm_seconds(
      opts.outer_opa, m, opts.blocksize, kk, opts.precision);
  stats.slab_d2h_seconds = dev.model().d2h_seconds(4 * opts.blocksize * m);
  return stats;
}

OocGemmStats outer_product_blocking_impl(Device& dev, const Operand& a,
                                         const Operand& b, HostConstRef c_in,
                                         HostMutRef c_out,
                                         const OocGemmOptions& opts) {
  const bool ta = opts.outer_opa == Op::Trans;
  const index_t m = ta ? a.cols() : a.rows();
  const index_t kk = ta ? a.rows() : a.cols();
  const bool tb = opts.outer_opb == Op::Trans;
  const index_t n = tb ? b.rows() : b.cols();
  ROCQR_CHECK((tb ? b.cols() : b.rows()) == kk,
              "outer_product_blocking: k mismatch");
  ROCQR_CHECK(c_in.rows == m && c_in.cols == n && c_out.rows == m &&
                  c_out.cols == n,
              "outer_product_blocking: C shape mismatch");
  ROCQR_CHECK(m > 0 && n > 0 && kk > 0, "outer_product_blocking: empty operand");

  const index_t b1 = opts.blocksize;
  const index_t b2 = opts.tile_cols > 0 ? opts.tile_cols : opts.blocksize;
  const auto row_tiles = slab_partition(m, b1);
  const auto col_tiles = slab_partition(n, b2);

  // Materialize the processed-tile list up front: the symmetric-update mode
  // skips tiles entirely below the diagonal, and the pipeline's step/fence
  // accounting runs over the tiles actually streamed.
  std::vector<std::pair<Slab, Slab>> tiles;
  tiles.reserve(row_tiles.size() * col_tiles.size());
  for (const Slab& rt : row_tiles) {
    for (const Slab& ct : col_tiles) {
      if (opts.upper_triangle_tiles_only && ct.offset + ct.width <= rt.offset) {
        continue;
      }
      tiles.emplace_back(rt, ct);
    }
  }
  ROCQR_CHECK(!tiles.empty(), "outer_product_blocking: no tiles processed");

  SlabPipeline pipe(dev, opts, "outer_product_blocking");

  // Both inputs are tall-and-skinny and stay resident (§3.3.2).
  ResidentInput ares = stage_operand(pipe, a, "outer_blk.A", "h2d outer_blk.A");
  ResidentInput bres = stage_operand(pipe, b, "outer_blk.B", "h2d outer_blk.B");

  // C tile working space: a rotating pair with the §4.1.2 optimization so
  // tile t+1 prefetches while tile t computes/drains; a single buffer — the
  // paper's baseline — serializes move-ins behind move-outs.
  const index_t c_slots = opts.staging_buffer ? 2 : 1;
  std::vector<ScopedMatrix> buf_c;
  buf_c.reserve(static_cast<size_t>(c_slots));
  for (index_t i = 0; i < c_slots; ++i) {
    buf_c.emplace_back(dev, b1, b2, StoragePrecision::FP32,
                       i == 0 ? "outer_blk.C" : "outer_blk.Cstage");
  }

  SlabPlan plan;
  plan.label = "outer_product_blocking";
  plan.steps = static_cast<index_t>(tiles.size());
  plan.input_slots = 0; // no streamed-input pool: A and B are resident
  plan.output_fence = OutputFence::MoveInCounted;
  plan.output_slots = c_slots;
  plan.resident_ready = {ares.ready, bres.ready};
  plan.input_region = [&](index_t t) {
    return std::make_optional(tiles[static_cast<size_t>(t)]);
  };
  plan.move_in_output = [&](MoveInCtx& ctx, index_t t) {
    if (opts.beta == 0.0f) return;
    const auto& [rt, ct] = tiles[static_cast<size_t>(t)];
    const DeviceMatrix& cbuf = buf_c[static_cast<size_t>(t % c_slots)].get();
    ctx.h2d(DeviceMatrixRef(cbuf, 0, 0, rt.width, ct.width),
            host_block(c_in, rt.offset, ct.offset, rt.width, ct.width),
            "h2d C[" + std::to_string(t) + "]");
  };
  plan.compute = [&](ComputeCtx& ctx, index_t t) {
    const auto& [rt, ct] = tiles[static_cast<size_t>(t)];
    const DeviceMatrix& cbuf = buf_c[static_cast<size_t>(t % c_slots)].get();
    const DeviceMatrixRef a_tile =
        ta ? ares.ref.block(0, rt.offset, kk, rt.width)
           : ares.ref.block(rt.offset, 0, rt.width, kk);
    const DeviceMatrixRef b_tile =
        tb ? bres.ref.block(ct.offset, 0, ct.width, kk)
           : bres.ref.block(0, ct.offset, kk, ct.width);
    ctx.gemm(opts.outer_opa, opts.outer_opb, opts.alpha, a_tile, b_tile,
             opts.beta, DeviceMatrixRef(cbuf, 0, 0, rt.width, ct.width),
             "gemm C[" + std::to_string(t) + "]");
  };
  plan.move_out = [&](MoveOutCtx& ctx, index_t t) {
    const auto& [rt, ct] = tiles[static_cast<size_t>(t)];
    const DeviceMatrix& cbuf = buf_c[static_cast<size_t>(t % c_slots)].get();
    ctx.d2h(host_block(c_out, rt.offset, ct.offset, rt.width, ct.width),
            DeviceMatrixRef(cbuf, 0, 0, rt.width, ct.width),
            "d2h C[" + std::to_string(t) + "]");
  };
  plan.output_region = [&](index_t t) {
    return std::make_optional(tiles[static_cast<size_t>(t)]);
  };

  SlabRunResult run = pipe.run(plan);

  for (auto& buf : buf_c) buf.reset();
  ares.owned.reset();
  bres.owned.reset();

  OocGemmStats stats;
  stats.summary = sim::summarize(dev.trace(), pipe.window_begin());
  stats.steps = static_cast<index_t>(tiles.size());
  stats.done = run.out_done.back();
  stats.output_ready = std::move(run.output_regions);
  stats.device_result_ready = run.compute_done.back();
  stats.plan = pipe.plan_description();
  stats.steady_gemm_rate =
      dev.model().gemm_rate(opts.outer_opa, b1, b2, kk, opts.precision);
  stats.slab_h2d_seconds = dev.model().h2d_seconds(4 * b1 * b2);
  stats.slab_gemm_seconds =
      dev.model().gemm_seconds(Op::NoTrans, b1, b2, kk, opts.precision);
  stats.slab_d2h_seconds = dev.model().d2h_seconds(4 * b1 * b2);
  return stats;
}

} // namespace

OocGemmStats outer_product_recursive(Device& dev, const Operand& a,
                                     const Operand& b, HostConstRef c_in,
                                     HostMutRef c_out,
                                     const OocGemmOptions& opts) {
  opts.validate();
  return detail::with_oom_degradation(dev, opts, [&](const OocGemmOptions& o) {
    return outer_product_recursive_impl(dev, a, b, c_in, c_out, o);
  });
}

OocGemmStats outer_product_colwise(Device& dev, const Operand& a,
                                   const Operand& b, HostConstRef c_in,
                                   HostMutRef c_out,
                                   const OocGemmOptions& opts) {
  opts.validate();
  return detail::with_oom_degradation(dev, opts, [&](const OocGemmOptions& o) {
    return outer_product_colwise_impl(dev, a, b, c_in, c_out, o);
  });
}

OocGemmStats outer_product_blocking(Device& dev, const Operand& a,
                                    const Operand& b, HostConstRef c_in,
                                    HostMutRef c_out,
                                    const OocGemmOptions& opts) {
  opts.validate();
  return detail::with_oom_degradation(dev, opts, [&](const OocGemmOptions& o) {
    return outer_product_blocking_impl(dev, a, b, c_in, c_out, o);
  });
}

} // namespace rocqr::ooc
