// The four out-of-core GEMM engines of §3.3/§4.1.
//
// Naming follows the paper: the "inner product" computes R12 = Q1ᵀ·A2 and
// the "outer product" computes the trailing update A2 -= Q1·R12. Each exists
// in the tiling used by the recursive QR and the tiling used by the blocking
// QR:
//
//   inner_product_recursive  C  = AᵀB   split the (long) reduction dim k;
//                                        C accumulates on device, moved out
//                                        once. Both inputs stream exactly
//                                        once (when C fits unsplit).
//   inner_product_blocking   C  = AᵀB   A (the panel Q) resident; B streamed
//                                        in n-slabs; C slab moved out per
//                                        step.
//   outer_product_recursive  C -= A·B   B resident; A and C streamed in row
//                                        slabs; extra C working space so the
//                                        next move-in is not serialized
//                                        behind the move-out (§4.1.2).
//   outer_product_blocking   C -= A·B   A and B resident; C streamed in
//                                        b1 x b2 tiles.
//
// Engines only *enqueue* asynchronous device work and return scheduling
// statistics; they do not synchronize at the end, so a caller (the QR
// drivers) can overlap the tail of one engine with the head of the next —
// the paper's QR-level optimization. Callers that need the wall time of a
// single engine synchronize the device themselves.
#pragma once

#include <string>
#include <vector>

#include "blas/gemm.hpp"
#include "ooc/operand.hpp"
#include "ooc/slab_schedule.hpp"
#include "sim/device.hpp"
#include "sim/trace.hpp"

namespace rocqr::ooc {

/// Completion marker for one rectangular host region written by an engine's
/// device-to-host move-outs: once `event` completes, host rows
/// [rows.offset, rows.offset+rows.width) x cols [cols.offset, ...) are
/// current. Drivers use these to start the *next* operation's move-ins as
/// soon as the data they touch is ready — the paper's QR-level overlapping —
/// instead of waiting for the whole previous operation.
struct RegionEvent {
  Slab rows;
  Slab cols;
  sim::Event event;
};

/// Collector for the --explain-plan tooling. When wired into
/// OocGemmOptions::plan_log (or QrOptions::plan_log, which forwards), every
/// TaskGraph — the single executor; SlabPipeline and all engines lower onto
/// it — appends its node/edge summary to `text` and a Graphviz digraph to
/// `dot` as it is torn down. Plain accumulation with no locking: wire it up
/// for single-threaded explanation runs (benches, rocqr_cli), not serve.
struct PlanLog {
  std::string text;
  std::string dot;
};

struct OocGemmOptions {
  /// Primary slab width (k-slab for recursive inner, n-slab for blocking
  /// inner, row-slab for recursive outer, tile rows for blocking outer).
  index_t blocksize = 16384;
  /// Blocking outer product: tile columns b2 (0 means == blocksize).
  index_t tile_cols = 0;
  /// Recursive inner product: column-panel width for C when the full m x n
  /// accumulator cannot stay resident (small-memory devices). 0 = unsplit.
  index_t c_panel_cols = 0;
  /// §4.1.3 ramp-up of the streamed slab width.
  bool ramp_up = false;
  index_t ramp_start = 2048;
  /// §4.1.2 extra C working space in the outer products, realized as a
  /// rotating buffer pair: slab t+1 prefetches while slab t computes and
  /// drains. Off = the single-buffer baseline the paper describes, whose
  /// move-ins serialize behind move-outs.
  bool staging_buffer = true;
  /// Synchronize the device after every operation (the tables' synchronous
  /// baseline rows; disables all overlap).
  bool synchronous = false;
  /// Number of in-flight streamed-input buffers (2 = double buffering).
  int pipeline_depth = 2;
  blas::GemmPrecision precision = blas::GemmPrecision::FP16_FP32;
  /// Outer products only: transpose the streamed A operand, i.e. compute
  /// C := beta·C + alpha·op(A)·B with op = Aᵀ. A is then stored k x m on the
  /// host and streamed in *column* slabs matching C's row slabs. This is the
  /// shape of the symmetric trailing update A22 -= R12ᵀ·R12 in out-of-core
  /// Cholesky (the paper's §6 future work, implemented in src/lu).
  blas::Op outer_opa = blas::Op::NoTrans;
  /// Outer products only: transpose the resident B operand (stored n x k on
  /// the host when Trans).
  blas::Op outer_opb = blas::Op::NoTrans;
  /// Outer products only: the scalars of C := beta·C + alpha·op(A)·op(B).
  /// Defaults express the trailing update C -= A·B. With beta == 0 the C
  /// move-in is skipped entirely (write-only output). The inner-product
  /// engines keep their fixed C = Aᵀ·B semantics.
  float alpha = -1.0f;
  float beta = 1.0f;
  /// outer_product_blocking only: skip tiles strictly below the diagonal of
  /// C. For symmetric trailing updates (Cholesky's A22 -= R12ᵀR12) only the
  /// upper triangle is ever read again, so the sub-diagonal tiles are pure
  /// waste — this roughly halves that update's movement and flops.
  bool upper_triangle_tiles_only = false;
  /// outer_product_recursive only, square C: stream each row slab as the
  /// trapezoid from the diagonal rightward (columns [slab start, n)) — the
  /// row-slab analogue of the triangular tile filter above, for the
  /// recursive Cholesky trailing update.
  bool upper_trapezoid_slabs = false;
  /// Events that must complete before this engine's first host read (its
  /// streamed host inputs were produced by earlier device-to-host copies).
  std::vector<sim::Event> host_input_ready;
  // --- Fault tolerance (docs/FAULTS.md) ----------------------------------
  /// Transfer retry budget per copy: a copy that throws TransferError (an
  /// injected transient fault) is re-enqueued up to this many times total,
  /// with exponential backoff on the simulated host clock between attempts.
  /// Exhausting the budget throws FaultBudgetExhausted.
  int transfer_max_attempts = 4;
  /// Backoff before the first re-attempt; doubles per retry.
  double transfer_backoff_seconds = 1e-3;
  /// On DeviceOutOfMemory, halve blocksize (and tile_cols/c_panel_cols) and
  /// re-plan the whole engine call instead of propagating, down to
  /// degrade_min_blocksize. Safe because every engine allocates all device
  /// buffers before its first device-to-host write.
  bool degrade_on_oom = true;
  index_t degrade_min_blocksize = 32;
  /// Opt-in ABFT: verify every engine GEMM against a column-sum check
  /// vector (Real mode only) and recompute the slab on mismatch. Detects
  /// injected compute corruption; see docs/FAULTS.md for the tolerance.
  bool abft = false;
  /// Fine-grained alternative for the *streamed* host input (B slabs of the
  /// blocking inner product, C slabs/tiles of the outer products): per-slab
  /// reads wait only on the regions they intersect, in the ENGINE'S local
  /// coordinates. This is the full §4.2 cross-operation pipelining — slab j
  /// of the next operation starts as soon as the previous operation's
  /// writes covering slab j landed, not when the whole operation finished.
  std::vector<RegionEvent> streamed_input_regions;
  /// When non-null, every task graph run under these options reports its
  /// lowered form here on teardown (--explain-plan / --explain-plan=dot).
  /// Not owned; must outlive the engine call.
  PlanLog* plan_log = nullptr;

  /// Throws InvalidArgument on out-of-range knobs (mirrors
  /// QrOptions::validate). Every engine entry point calls this before
  /// planning; engines no longer silently clamp (pipeline_depth < 1 used to
  /// be rounded up to 1 — now it is an error).
  void validate() const;
};

struct OocGemmStats {
  sim::TraceSummary summary; ///< aggregate over this engine's trace window
  index_t steps = 0;         ///< number of streamed slabs/tiles
  /// Per-region completion of this engine's host writes (see RegionEvent).
  std::vector<RegionEvent> output_ready;
  /// Completes when every operation this engine enqueued has finished.
  sim::Event done;
  /// Completes when the device-resident result (keep_c) holds final values —
  /// i.e. after the last GEMM, typically earlier than `done`. Consumers of a
  /// kept C wait on this (not on `done`) to start sooner.
  sim::Event device_result_ready;
  /// Modeled in-core rate of the steady-state (full-width) GEMM, flop/s.
  double steady_gemm_rate = 0.0;
  /// Duration of one steady-state slab's H2D / GEMM / D2H (the "single
  /// block time cost" rows of Tables 1 and 2).
  sim_time_t slab_h2d_seconds = 0;
  sim_time_t slab_gemm_seconds = 0;
  sim_time_t slab_d2h_seconds = 0;
  /// Human-readable description of the slab-pipeline plan(s) the engine
  /// built (buffer depths, fences, groups) — surfaced by the benches'
  /// --explain-plan flag.
  std::string plan;
};

/// C (m x n) = Aᵀ·B with A: k x m and B: k x n streamed from the host in
/// k-slabs. If `keep_c` is non-null, the device-resident fp32 accumulator is
/// handed back to the caller instead of being freed (QR-level optimization;
/// requires c_panel_cols == 0). C is always also copied out to `c`.
OocGemmStats inner_product_recursive(sim::Device& dev, const Operand& a,
                                     const Operand& b, sim::HostMutRef c,
                                     const OocGemmOptions& opts,
                                     sim::DeviceMatrix* keep_c = nullptr);

/// C (m x n) = Aᵀ·B with A: k x m resident (or moved in once) and B streamed
/// in n-slabs of `blocksize` columns.
OocGemmStats inner_product_blocking(sim::Device& dev, const Operand& a,
                                    const Operand& b, sim::HostMutRef c,
                                    const OocGemmOptions& opts,
                                    sim::DeviceMatrix* keep_c = nullptr);

/// C (m x n) -= A·B with A: m x k and C streamed in `blocksize`-row slabs
/// and B: k x n resident (or moved in once). C is updated in place on the
/// host (c_in and c_out may alias; shapes must match).
OocGemmStats outer_product_recursive(sim::Device& dev, const Operand& a,
                                     const Operand& b,
                                     sim::HostConstRef c_in,
                                     sim::HostMutRef c_out,
                                     const OocGemmOptions& opts);

/// C (m x n) -= A·B with A and B resident (or moved in once) and C streamed
/// in blocksize x tile_cols tiles.
OocGemmStats outer_product_blocking(sim::Device& dev, const Operand& a,
                                    const Operand& b, sim::HostConstRef c_in,
                                    sim::HostMutRef c_out,
                                    const OocGemmOptions& opts);

/// Column-wise dual of outer_product_recursive: C (m x n) -= op(A)·B with
/// op(A) (m x k) resident (or moved in once) and B and C streamed in
/// `blocksize`-COLUMN slabs. This is the update shape of out-of-core
/// triangular solves (B2 -= L21·X1 with L21 resident, unknowns streamed by
/// right-hand-side columns), the substrate for the LU/Cholesky extensions.
/// opts.outer_opa applies to A (resident either way).
OocGemmStats outer_product_colwise(sim::Device& dev, const Operand& a,
                                   const Operand& b, sim::HostConstRef c_in,
                                   sim::HostMutRef c_out,
                                   const OocGemmOptions& opts);

} // namespace rocqr::ooc
