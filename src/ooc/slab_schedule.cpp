#include "ooc/slab_schedule.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace rocqr::ooc {

std::vector<Slab> slab_partition(index_t total, index_t blocksize,
                                 bool ramp_up, index_t ramp_start) {
  ROCQR_CHECK(total >= 0, "slab_partition: negative total");
  ROCQR_CHECK(blocksize > 0, "slab_partition: blocksize must be positive");
  ROCQR_CHECK(!ramp_up || (ramp_start > 0 && ramp_start <= blocksize),
              "slab_partition: ramp_start must be in (0, blocksize]");
  std::vector<Slab> slabs;
  index_t offset = 0;
  index_t width = ramp_up ? ramp_start : blocksize;
  while (offset < total) {
    const index_t w = std::min(width, total - offset);
    slabs.push_back(Slab{offset, w});
    offset += w;
    if (ramp_up && width < blocksize) width = std::min(width * 2, blocksize);
  }
  return slabs;
}

index_t max_slab_width(const std::vector<Slab>& slabs) {
  index_t best = 0;
  for (const Slab& s : slabs) best = std::max(best, s.width);
  return best;
}

} // namespace rocqr::ooc
