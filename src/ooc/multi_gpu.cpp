#include "ooc/multi_gpu.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "ooc/operand.hpp"
#include "ooc/slab_schedule.hpp"

namespace rocqr::ooc {

MultiGpuGemmResult multi_gpu_outer_product(
    const std::vector<sim::Device*>& devices, sim::HostConstRef a,
    sim::HostConstRef b, sim::HostConstRef c_in, sim::HostMutRef c_out,
    const OocGemmOptions& opts) {
  opts.validate();
  ROCQR_CHECK(!devices.empty(), "multi_gpu_outer_product: no devices");
  for (sim::Device* dev : devices) {
    ROCQR_CHECK(dev != nullptr, "multi_gpu_outer_product: null device");
  }
  ROCQR_CHECK(opts.outer_opa == blas::Op::NoTrans &&
                  opts.outer_opb == blas::Op::NoTrans,
              "multi_gpu_outer_product: transposed operands not supported");
  const index_t m = a.rows;
  const index_t n = b.cols;
  ROCQR_CHECK(a.cols == b.rows, "multi_gpu_outer_product: k mismatch");
  ROCQR_CHECK(c_out.rows == m && c_out.cols == n,
              "multi_gpu_outer_product: C shape mismatch");

  // Contiguous row shares, balanced to within one blocksize.
  const auto g = static_cast<index_t>(devices.size());
  const index_t bs = std::max<index_t>(opts.blocksize, 1);
  const index_t blocks = (m + bs - 1) / bs;
  MultiGpuGemmResult result;
  result.per_device.reserve(devices.size());

  index_t row0 = 0;
  for (index_t d = 0; d < g; ++d) {
    // Round shares to blocksize multiples so every device streams aligned
    // slabs; the last device takes the remainder.
    const index_t share_blocks = (blocks * (d + 1)) / g - (blocks * d) / g;
    const index_t rows = std::min(share_blocks * bs, m - row0);
    if (rows == 0) {
      result.per_device.push_back(OocGemmStats{});
      continue;
    }
    sim::Device& dev = *devices[static_cast<size_t>(d)];
    result.per_device.push_back(outer_product_recursive(
        dev, Operand::on_host(host_block(a, row0, 0, rows, a.cols)),
        Operand::on_host(b), host_block(c_in, row0, 0, rows, n),
        host_block(c_out, row0, 0, rows, n), opts));
    row0 += rows;
  }
  ROCQR_CHECK(row0 == m, "multi_gpu_outer_product: row shares do not tile C");

  for (sim::Device* dev : devices) {
    dev->synchronize();
    result.makespan = std::max(result.makespan, dev->makespan());
  }
  return result;
}

} // namespace rocqr::ooc
