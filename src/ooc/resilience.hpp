// Fault-tolerant execution primitives shared by the OOC engines and the QR
// drivers: transfer retry with bounded exponential backoff, graceful
// slab-size degradation on device OOM, and ABFT-checked GEMM. All three are
// zero-overhead when no fault plan is installed and the knobs are at their
// defaults: retries only engage on a thrown TransferError, degradation only
// on a thrown DeviceOutOfMemory, and the ABFT check is gated on opts.abft.
// Recovery semantics are documented in docs/FAULTS.md; every recovery
// action lands on a telemetry counter (transfer_retries, slab_degradations,
// abft_recomputes) and a trace span.
#pragma once

#include <algorithm>
#include <string>

#include "common/error.hpp"
#include "common/telemetry.hpp"
#include "ooc/gemm_engines.hpp"
#include "sim/device.hpp"
#include "sim/trace_export.hpp"

namespace rocqr::ooc::detail {

/// Enqueues an H2D copy, retrying injected transient failures. Each retry
/// advances the simulated host clock by an exponentially growing backoff
/// (the failed enqueue itself consumed no engine time). Throws
/// FaultBudgetExhausted once `max_attempts` attempts all failed.
void copy_h2d_retry(sim::Device& dev, sim::DeviceMatrixRef dst,
                    sim::HostConstRef src, sim::Stream s,
                    const std::string& name, int max_attempts,
                    double backoff_seconds);

/// D2H counterpart of copy_h2d_retry.
void copy_d2h_retry(sim::Device& dev, sim::HostMutRef dst,
                    sim::DeviceMatrixRef src, sim::Stream s,
                    const std::string& name, int max_attempts,
                    double backoff_seconds);

/// Batched counterparts: one fused transfer is one fault site, so a
/// transient failure aborts (and a retry replays) the whole batch.
void copy_h2d_batched_retry(sim::Device& dev,
                            const std::vector<sim::Device::H2dBatchEntry>& es,
                            sim::Stream s, const std::string& name,
                            int max_attempts, double backoff_seconds);

void copy_d2h_batched_retry(sim::Device& dev,
                            const std::vector<sim::Device::D2hBatchEntry>& es,
                            sim::Stream s, const std::string& name,
                            int max_attempts, double backoff_seconds);

inline void copy_h2d_retry(sim::Device& dev, sim::DeviceMatrixRef dst,
                           sim::HostConstRef src, sim::Stream s,
                           const std::string& name,
                           const OocGemmOptions& opts) {
  copy_h2d_retry(dev, dst, src, s, name, opts.transfer_max_attempts,
                 opts.transfer_backoff_seconds);
}

inline void copy_d2h_retry(sim::Device& dev, sim::HostMutRef dst,
                           sim::DeviceMatrixRef src, sim::Stream s,
                           const std::string& name,
                           const OocGemmOptions& opts) {
  copy_d2h_retry(dev, dst, src, s, name, opts.transfer_max_attempts,
                 opts.transfer_backoff_seconds);
}

/// dev.gemm plus the opt-in ABFT check: in Real mode with opts.abft, the
/// result is verified against a column-sum check vector computed in double
/// precision from the operands; on mismatch C is restored, the GEMM
/// re-enqueued (visible in the trace as an `abft_recompute` span), and a
/// persistent mismatch throws NumericalError. Phantom mode and abft=false
/// degenerate to a plain dev.gemm call.
void checked_gemm(sim::Device& dev, const OocGemmOptions& opts, blas::Op opa,
                  blas::Op opb, float alpha, sim::DeviceMatrixRef a,
                  sim::DeviceMatrixRef b, float beta, sim::DeviceMatrixRef c,
                  sim::Stream s, const std::string& name);

/// Halves the slab/tile knobs of `opts` one degradation step; returns false
/// when already at the floor (degradation must rethrow).
bool degrade_slab_options(OocGemmOptions& opts);

void count_slab_degradation();

/// Runs an engine body, degrading the slab schedule on DeviceOutOfMemory:
/// halve blocksize (and the dependent tile knobs) and re-run the body with
/// the smaller plan until it fits or degrade_min_blocksize is reached. The
/// retry is sound because engines allocate every device buffer up front —
/// an OOM can only fire before the first device-to-host write, so no host
/// data has been touched when the body is abandoned (its already-enqueued
/// move-ins stay in the trace as wasted work, which is realistic).
template <typename Fn>
auto with_oom_degradation(sim::Device& dev, const OocGemmOptions& opts,
                          Fn&& body) {
  OocGemmOptions cur = opts;
  bool degraded = false;
  for (;;) {
    try {
      if (!degraded) return body(static_cast<const OocGemmOptions&>(cur));
      sim::TraceSpan span(dev, "slab_degradation retry b=" +
                                   std::to_string(cur.blocksize));
      return body(static_cast<const OocGemmOptions&>(cur));
    } catch (const DeviceOutOfMemory&) {
      if (!cur.degrade_on_oom || !degrade_slab_options(cur)) throw;
      degraded = true;
      count_slab_degradation();
    }
  }
}

} // namespace rocqr::ooc::detail
