// General out-of-core GEMM — the cuBLASXt-style entry point a downstream
// user reaches for first: C := beta·C + alpha·op(A)·op(B) with all three
// matrices host-resident and arbitrarily large.
//
// Dispatch: the smaller of op(A)/op(B) becomes the resident factor and C
// streams against it — row slabs when A is streamed (outer engine), column
// slabs when B is streamed (column-wise engine). beta == 0 skips the C
// move-ins entirely. For the reduction-heavy C = Aᵀ·B shape with both
// factors huge (the QR inner product), use inner_product_recursive directly
// — this facade optimizes for the general case, not that special structure.
#pragma once

#include "ooc/gemm_engines.hpp"

namespace rocqr::ooc {

/// Describes one out-of-core GEMM, C := beta·C + alpha·op(A)·op(B), with all
/// three matrices host-resident. Replaces the former 10-positional-argument
/// ooc_gemm signature: name the fields you set, default the rest.
///
///   GemmProblem p;
///   p.opa = blas::Op::Trans;
///   p.a = q;  p.b = a2;  p.c_out = r12;
///   ooc_gemm(dev, p);
struct GemmProblem {
  blas::Op opa = blas::Op::NoTrans;
  blas::Op opb = blas::Op::NoTrans;
  float alpha = 1.0f;
  float beta = 0.0f;
  /// A is stored m x k (NoTrans) or k x m (Trans); B is k x n or n x k.
  sim::HostConstRef a;
  sim::HostConstRef b;
  /// Prior C values; only read when beta != 0 (may stay default-constructed
  /// for a write-only C). c_in and c_out may alias.
  sim::HostConstRef c_in;
  sim::HostMutRef c_out;
};

/// Runs one GemmProblem. The resident factor (the smaller of op(A)/op(B))
/// must fit device memory (throws DeviceOutOfMemory otherwise); the streamed
/// matrices may be arbitrarily large.
OocGemmStats ooc_gemm(sim::Device& dev, const GemmProblem& problem,
                      OocGemmOptions opts = {});

} // namespace rocqr::ooc
