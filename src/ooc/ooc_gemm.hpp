// General out-of-core GEMM — the cuBLASXt-style entry point a downstream
// user reaches for first: C := beta·C + alpha·op(A)·op(B) with all three
// matrices host-resident and arbitrarily large.
//
// Dispatch: the smaller of op(A)/op(B) becomes the resident factor and C
// streams against it — row slabs when A is streamed (outer engine), column
// slabs when B is streamed (column-wise engine). beta == 0 skips the C
// move-ins entirely. For the reduction-heavy C = Aᵀ·B shape with both
// factors huge (the QR inner product), use inner_product_recursive directly
// — this facade optimizes for the general case, not that special structure.
#pragma once

#include "ooc/gemm_engines.hpp"

namespace rocqr::ooc {

/// C (m x n) := beta·C + alpha·op(A)·op(B), everything on the host.
/// A is stored m x k (NoTrans) or k x m (Trans); B is k x n or n x k.
/// c_in and c_out may alias; with beta == 0, c_in may be phantom/null.
/// The resident factor must fit device memory (throws DeviceOutOfMemory
/// otherwise); the streamed matrices may be arbitrarily large.
OocGemmStats ooc_gemm(sim::Device& dev, blas::Op opa, blas::Op opb,
                      float alpha, sim::HostConstRef a, sim::HostConstRef b,
                      float beta, sim::HostConstRef c_in,
                      sim::HostMutRef c_out, OocGemmOptions opts = {});

} // namespace rocqr::ooc
