#include "ooc/ooc_gemm.hpp"

#include "common/error.hpp"
#include "ooc/operand.hpp"
#include "sim/trace_export.hpp"

namespace rocqr::ooc {

OocGemmStats ooc_gemm(sim::Device& dev, const GemmProblem& p,
                      OocGemmOptions opts) {
  sim::TraceSpan span(dev, "ooc_gemm");
  sim::HostConstRef a = p.a;
  sim::HostConstRef b = p.b;
  sim::HostConstRef c_in = p.c_in;
  const index_t m = blas::op_rows(p.opa, a.rows, a.cols);
  const index_t k = blas::op_cols(p.opa, a.rows, a.cols);
  const index_t n = blas::op_cols(p.opb, b.rows, b.cols);
  ROCQR_CHECK(blas::op_rows(p.opb, b.rows, b.cols) == k,
              "ooc_gemm: inner dimension mismatch");
  ROCQR_CHECK(p.c_out.rows == m && p.c_out.cols == n,
              "ooc_gemm: C shape mismatch");
  if (p.beta != 0.0f) {
    ROCQR_CHECK(c_in.rows == m && c_in.cols == n,
                "ooc_gemm: C input shape mismatch");
  } else if (c_in.rows != m || c_in.cols != n) {
    // Allow a default-constructed c_in when C is write-only.
    c_in = sim::HostConstRef::phantom(m, n);
  }

  opts.alpha = p.alpha;
  opts.beta = p.beta;
  opts.outer_opa = p.opa;
  opts.outer_opb = p.opb;

  // Keep the smaller factor resident; stream C against the larger one.
  const bytes_t a_bytes = static_cast<bytes_t>(a.rows) * a.cols;
  const bytes_t b_bytes = static_cast<bytes_t>(b.rows) * b.cols;
  if (a_bytes <= b_bytes && p.opb == blas::Op::NoTrans) {
    // A resident, B and C stream in column slabs.
    return outer_product_colwise(dev, Operand::on_host(a),
                                 Operand::on_host(b), c_in, p.c_out, opts);
  }
  // B resident, A and C stream in row slabs.
  return outer_product_recursive(dev, Operand::on_host(a),
                                 Operand::on_host(b), c_in, p.c_out, opts);
}

} // namespace rocqr::ooc
