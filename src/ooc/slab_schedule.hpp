// Partitioning of a streamed dimension into slabs, with the optional
// ramp-up schedule of §4.1.3 (start small so the first move-in is partially
// hidden, grow to the full blocksize for steady-state efficiency).
#pragma once

#include <vector>

#include "common/types.hpp"

namespace rocqr::ooc {

struct Slab {
  index_t offset = 0;
  index_t width = 0;
};

/// Splits [0, total) into contiguous slabs of `blocksize` (the last slab
/// takes the remainder). With `ramp_up`, widths start at `ramp_start` and
/// double each step until reaching `blocksize`.
std::vector<Slab> slab_partition(index_t total, index_t blocksize,
                                 bool ramp_up = false,
                                 index_t ramp_start = 2048);

/// Largest width appearing in a partition (buffer sizing).
index_t max_slab_width(const std::vector<Slab>& slabs);

} // namespace rocqr::ooc
