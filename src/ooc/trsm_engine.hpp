// Out-of-core triangular solve — the substrate the LU and Cholesky drivers
// (the paper's §6 future work) need for their U12 / R12 panels when the
// triangle itself exceeds device memory.
//
// Recursive structure (Toledo-style):
//   solve(T[0:h,0:h], B[0:h,:])                     — recurse (top)
//   B[h:,:] -= M · X_top                            — outer_product_colwise,
//       M = T[h:,0:h]        for L·X = B            (NoTrans)
//       M = T[0:h,h:]ᵀ       for Rᵀ·X = B           (Trans)
//   solve(T[h:,h:], B[h:,:])                        — recurse (bottom)
// The base case keeps the (blocksize-sized) triangle resident and streams B
// in column slabs through the device trsm kernel.
#pragma once

#include "ooc/gemm_engines.hpp"

namespace rocqr::ooc {

enum class TriSolveKind {
  LowerUnit,  ///< X := L⁻¹ B, L lower triangular with unit diagonal (LU)
  UpperTrans, ///< X := R⁻ᵀ B, R upper triangular (Cholesky)
  Upper,      ///< X := U⁻¹ B, U upper triangular (back substitution; the
              ///< recursion runs bottom-up)
};

/// Solves op(T)·X = B out of core, in place on the host: `t` is the n x n
/// host triangle, `b_in`/`b_out` the n x nrhs right-hand sides (may alias).
/// The off-diagonal update blocks are held resident per recursion level, so
/// the largest must fit the device ((n/2)² input-precision words).
OocGemmStats ooc_trsm(sim::Device& dev, TriSolveKind kind,
                      sim::HostConstRef t, sim::HostConstRef b_in,
                      sim::HostMutRef b_out, const OocGemmOptions& opts);

} // namespace rocqr::ooc
