// Task-DAG executor under the slab pipeline — the generalization of
// `SlabPipeline` from one linear streaming loop to an arbitrary dependency
// graph of move-in / compute / move-out nodes on the same three-stream
// schedule.
//
// `SlabPipeline` replays one declarative loop: its input-pool fence, output
// fence and region waits are fixed wiring patterns over consecutive steps.
// `TaskGraph` makes the wiring explicit: every tile/slab operation is a
// *node* pinned to one stage (and therefore one stream), and every hazard —
// RAW (compute waits its move-in), WAR (a move-in overwriting a buffer waits
// the computes still reading it; exactly the old output-fence taxonomy),
// host-side ordering (a move-in re-reading a host tile waits the move-out
// that last wrote it) — is an *edge*. The executor is a deterministic list
// scheduler at enqueue time: a node is ready once all its dependencies are
// enqueued, the lowest (priority, id) ready node is enqueued next, and
// cross-stream dependencies become `wait_event` edges while same-stream
// dependencies ride the stream's FIFO order. Because the simulator resolves
// op start times from engine FIFOs plus event waits, enqueue order IS the
// schedule — lookahead (Buttari-style tiled QR: factor panel k+1 while
// panel k's trailing updates drain) falls out of giving the panel node a
// smaller priority key than the updates behind it.
//
// The cross-cutting hooks are the same single-site ones the pipeline
// applies: transfer retry with backoff, opt-in ABFT checked GEMM, §4.2
// region gating on move-ins (`set_input_region`), synchronous-mode
// serialization, and an optional trace span around the whole graph.
// Checkpoint hooks stay at the driver layer: drivers run the graph in
// segments and snapshot at node-set boundaries (see qr/tiled_qr.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ooc/gemm_engines.hpp"
#include "sim/device.hpp"
#include "sim/trace_export.hpp"

namespace rocqr::ooc {

class TaskGraph;

/// Which stage (and therefore which stream/engine) a node runs on.
enum class TaskStage { MoveIn, Compute, MoveOut };

using TaskId = index_t;

/// Stage handle passed to a node's body. Only the operations matching the
/// node's stage are legal — h2d on MoveIn, gemm/trsm/stream on Compute, d2h
/// on MoveOut; anything else throws InvalidArgument so a mis-staged node
/// fails loudly instead of silently racing another engine.
class TaskCtx {
 public:
  /// MoveIn: host-to-device transfer with retry + sync_if applied.
  void h2d(sim::DeviceMatrixRef dst, sim::HostConstRef src,
           const std::string& name);
  /// MoveIn: fused transfer of K payloads in one link occupancy (batched
  /// serving path). One fault site; a retry replays the whole batch.
  void h2d_batched(const std::vector<sim::Device::H2dBatchEntry>& entries,
                   const std::string& name);
  /// Compute: GEMM with the opt-in ABFT column-sum check.
  void gemm(blas::Op opa, blas::Op opb, float alpha, sim::DeviceMatrixRef a,
            sim::DeviceMatrixRef b, float beta, sim::DeviceMatrixRef c,
            const std::string& name);
  /// Compute: block-diagonal batched GEMM (no ABFT — the batched serving
  /// path rejects abft jobs up front).
  void gemm_batched(const std::vector<sim::Device::GemmBatchEntry>& entries,
                    const std::string& name);
  /// Compute: triangular solve.
  void trsm(sim::Device::TrsmKind kind, sim::DeviceMatrixRef tri,
            sim::DeviceMatrixRef b, const std::string& name);
  /// Compute: the stream, for panel kernels (panel_qr_device & co.) that
  /// enqueue their own custom ops.
  sim::Stream stream() const;
  /// MoveOut: device-to-host transfer with retry + sync_if applied.
  void d2h(sim::HostMutRef dst, sim::DeviceMatrixRef src,
           const std::string& name);
  /// MoveOut: fused transfer of K payloads (symmetric to h2d_batched).
  void d2h_batched(const std::vector<sim::Device::D2hBatchEntry>& entries,
                   const std::string& name);
  /// Compute: records an event on the compute stream, fences the move-out
  /// stream on it, and enqueues the device-to-host copy there — the "drain
  /// an intermediate while compute continues" idiom of the recursive
  /// drivers (SlabPipeline's ComputeCtx::emit lowers onto this).
  sim::Event emit(sim::HostMutRef dst, sim::DeviceMatrixRef src,
                  const std::string& name);
  /// Extra wait on this node's stream (valid-checked) — for events that are
  /// not graph edges, e.g. a SlabPipeline resident-stage event.
  void wait(const sim::Event& e);

  sim::Device& device();
  const OocGemmOptions& options() const;

 private:
  friend class TaskGraph;
  TaskCtx(TaskGraph& g, TaskStage stage) : g_(g), stage_(stage) {}
  TaskGraph& g_;
  TaskStage stage_;
};

class TaskGraph {
 public:
  /// Creates the in/compute/out streams (in that order — stream numbering
  /// is part of the preserved schedule convention shared with
  /// SlabPipeline), opens an optional trace span, fences the H2D stream on
  /// opts.host_input_ready and then on every valid `wait_before` event
  /// (producer hand-off, e.g. TRSM waiting the factorization that wrote
  /// its triangle). `opts` must already be validated.
  TaskGraph(sim::Device& dev, const OocGemmOptions& opts,
            std::string span_name = {},
            std::vector<sim::Event> wait_before = {});

  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  /// Flushes the graph's lowered form (node/edge summary + Graphviz dump)
  /// into opts.plan_log, when one is wired up — the single chokepoint
  /// feeding --explain-plan, since every executor client lowers onto
  /// TaskGraph.
  ~TaskGraph();

  /// Adds a node. `deps` are node ids that must be enqueued before this
  /// node; `priority` orders the ready set (smaller runs earlier; ties
  /// break on id, so insertion order is the deterministic default).
  /// Returns the node's id.
  TaskId add(TaskStage stage, std::string label,
             std::function<void(TaskCtx&)> body, std::vector<TaskId> deps = {},
             std::int64_t priority = 0);

  /// Adds an edge dep -> node after the fact (WAR fences discovered while
  /// building later steps). Only legal before `node` has been enqueued.
  void add_dep(TaskId node, TaskId dep);

  /// §4.2 region gating: declares the host rectangle a MoveIn node reads.
  /// At enqueue the node waits every intersecting
  /// opts.streamed_input_regions event before its transfer.
  void set_input_region(TaskId node, Slab rows, Slab cols);

  /// Enqueues every node not yet enqueued, in dependency order, lowest
  /// (priority, id) ready node first. Incremental: drivers may add nodes,
  /// run(), snapshot a checkpoint, add more nodes and run() again —
  /// dependencies on nodes from earlier runs resolve through their
  /// recorded completion events. Throws InvalidArgument on a dependency
  /// cycle.
  void run();

  /// Completion event of an enqueued node (invalid before its run()).
  sim::Event done(TaskId id) const;

  /// Trace index at construction — the driver's stats window.
  size_t window_begin() const { return window_begin_; }

  /// Human-readable node/edge summary of everything run so far, including
  /// the count of fence edges (cross-stream dependencies that lowered to
  /// `wait_event`; same-stream edges ride the FIFO). One cumulative line
  /// (--explain-plan companion); empty until the first run().
  const std::string& plan_description() const { return plan_description_; }

  /// Graphviz dump of every node added so far (--explain-plan=dot). Solid
  /// edges are cross-stream fences, dashed edges ride a stream's FIFO.
  std::string dot(const std::string& graph_name = "taskgraph") const;

  sim::Device& device() { return dev_; }
  const OocGemmOptions& options() const { return opts_; }

 private:
  friend class TaskCtx;

  struct Node {
    TaskStage stage;
    std::string label;
    std::function<void(TaskCtx&)> body;
    std::vector<TaskId> deps;
    std::int64_t priority = 0;
    std::optional<std::pair<Slab, Slab>> input_region;
    sim::Event done{};
    bool enqueued = false;
  };

  sim::Stream stream_for(TaskStage stage) const;
  void enqueue(Node& node);

  sim::Device& dev_;
  OocGemmOptions opts_;
  // The span name (or "taskgraph"), kept for the plan_log flush.
  std::string name_;
  size_t window_begin_;
  std::optional<sim::TraceSpan> span_;
  sim::Stream in_;
  sim::Stream comp_;
  sim::Stream out_;
  std::vector<Node> nodes_;
  // Every node below this index was enqueued by an earlier run(); run()
  // only has to solve the suffix.
  size_t run_from_ = 0;
  // Cumulative across runs; composed into plan_description_.
  index_t n_in_ = 0, n_comp_ = 0, n_out_ = 0;
  index_t n_edges_ = 0, n_fence_edges_ = 0;
  std::string plan_description_;
};

} // namespace rocqr::ooc
