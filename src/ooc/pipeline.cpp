#include "ooc/pipeline.hpp"

#include <sstream>

#include "common/error.hpp"
#include "ooc/engine_util.hpp"
#include "ooc/resilience.hpp"

namespace rocqr::ooc {

using sim::Event;

SlabPipeline::SlabPipeline(sim::Device& dev, const OocGemmOptions& opts,
                           std::string span_name,
                           std::vector<Event> wait_before)
    : graph_(dev, opts, std::move(span_name), std::move(wait_before)) {}

Event SlabPipeline::stage_resident(sim::DeviceMatrixRef dst,
                                   sim::HostConstRef src,
                                   const std::string& name) {
  // Eagerly enqueued: one-shot stages must keep the legacy program order
  // relative to surrounding run()/run_task() calls, and callers may free
  // the host source right after this returns.
  const TaskId id = graph_.add(
      TaskStage::MoveIn, "stage " + name,
      [dst, src, name](TaskCtx& t) { t.h2d(dst, src, name); });
  graph_.run();
  return graph_.done(id);
}

Event SlabPipeline::record_input_marker() {
  // A body-less move-in node: its completion event marks everything
  // enqueued on the H2D stream so far.
  const TaskId id = graph_.add(TaskStage::MoveIn, "input marker", nullptr);
  graph_.run();
  return graph_.done(id);
}

namespace {

std::string describe_plan(const SlabPlan& plan, const OocGemmOptions& opts) {
  std::ostringstream os;
  os << "slab-pipeline " << (plan.label.empty() ? "loop" : plan.label) << ": "
     << plan.steps << " step(s)";
  if (plan.steps_per_group > 1) {
    os << " in groups of " << plan.steps_per_group;
  }
  if (plan.input_slots > 0) {
    os << ", input pool " << plan.input_slots << " slot(s)";
  } else {
    os << ", no streamed-input pool";
  }
  switch (plan.output_fence) {
    case OutputFence::None:
      os << ", output resident (no slot fence)";
      break;
    case OutputFence::MoveIn:
      os << ", output slots " << plan.output_slots << " (move-in fence)";
      break;
    case OutputFence::MoveInCounted:
      os << ", output slots " << plan.output_slots
         << " (move-in fence, counted)";
      break;
    case OutputFence::Compute:
      os << ", output slots " << plan.output_slots << " (compute fence)";
      break;
  }
  os << ", " << plan.resident_ready.size() << " resident operand(s)"
     << ", regions " << (plan.input_region ? "on" : "off") << ", blocksize "
     << opts.blocksize;
  if (opts.tile_cols > 0) os << " x " << opts.tile_cols;
  os << ", ramp "
     << (opts.ramp_up ? "from " + std::to_string(opts.ramp_start) : "off")
     << ", staging " << (opts.staging_buffer ? "on" : "off") << ", depth "
     << opts.pipeline_depth << (opts.synchronous ? ", SYNCHRONOUS" : "")
     << (opts.abft ? ", abft" : "") << "\n";
  return os.str();
}

} // namespace

// Lowering: each step becomes (up to) four nodes added in the legacy
// program order —
//
//   M1  streamed move-in; dep = the input-pool fence (compute node
//       `input_slots` global steps back) or the counted output-slot fence
//       (move-out node `output_slots` groups back); carries the §4.2
//       input region.
//   M2  output move-in; dep = M1 (same-stream FIFO) + the §4.1.2
//       output-slot fence (move-out node `output_slots` groups back).
//       Present when there is an output move-in or a MoveIn fence to
//       place between the two transfers.
//   C   compute; dep = the last move-in node, + the accumulator fence
//       (move-out node, per-group first step) for Compute-fenced plans.
//       First step waits the resident_ready events in its body.
//   O   per-group move-out; dep = the group's last compute.
//
// All nodes share priority 0 and every edge points backward, so the
// executor enqueues them in exactly this order: the device sees the same
// op/wait sequence the legacy interleaved loop produced (pinned by
// tests/schedule_golden_test.cpp and ooc_pipeline_lowering_test.cpp).
SlabRunResult SlabPipeline::run(const SlabPlan& plan) {
  ROCQR_CHECK(plan.steps > 0, "SlabPipeline: empty plan");
  ROCQR_CHECK(plan.compute != nullptr, "SlabPipeline: plan needs a compute");
  ROCQR_CHECK(plan.steps_per_group >= 1 &&
                  plan.steps % plan.steps_per_group == 0,
              "SlabPipeline: steps must be whole groups");
  ROCQR_CHECK(plan.output_slots >= 1, "SlabPipeline: output_slots < 1");
  plan_description_ += describe_plan(plan, options());

  const std::string stem = plan.label.empty() ? "loop" : plan.label;
  std::vector<TaskId> compute_ids;
  compute_ids.reserve(static_cast<size_t>(plan.steps));
  std::vector<TaskId> out_ids;
  std::vector<std::optional<std::pair<Slab, Slab>>> out_regions;

  for (index_t step = 0; step < plan.steps; ++step) {
    const index_t group = step / plan.steps_per_group;
    const index_t local = step % plan.steps_per_group;
    const std::string tag = stem + " s" + std::to_string(step);

    // Streamed-input pool fence: the slot this step rotates into was last
    // read by the compute `input_slots` global steps ago; the move-in may
    // not overwrite it earlier. The history spans run() calls so split
    // loops (left-looking projections) fence like one long loop. Without a
    // pool, the counted output-slot fence is the prefetch account
    // (blocking outer product, trsm base case).
    std::vector<TaskId> m1_deps;
    const index_t g_hist = static_cast<index_t>(history_.size());
    if (plan.input_slots > 0) {
      if (plan.count_prefetch) {
        detail::count_slab_prefetch(g_hist >= plan.input_slots);
      }
      if (g_hist >= plan.input_slots) {
        m1_deps.push_back(
            history_[static_cast<size_t>(g_hist - plan.input_slots)]);
      }
    } else if (plan.output_fence == OutputFence::MoveInCounted) {
      if (plan.count_prefetch) {
        detail::count_slab_prefetch(group >= plan.output_slots);
      }
      if (group >= plan.output_slots) {
        m1_deps.push_back(
            out_ids[static_cast<size_t>(group - plan.output_slots)]);
      }
    }

    std::function<void(TaskCtx&)> m1_body;
    if (plan.move_in) {
      m1_body = [&plan, step](TaskCtx& t) {
        MoveInCtx c(t);
        plan.move_in(c, step);
      };
    }
    const TaskId m1 = graph_.add(TaskStage::MoveIn, "in " + tag,
                                 std::move(m1_body), std::move(m1_deps));
    if (plan.input_region) {
      if (const auto region = plan.input_region(step)) {
        graph_.set_input_region(m1, region->first, region->second);
      }
    }

    // §4.1.2 output-slot fence: the working buffer this step's output
    // move-in (and GEMM) reuses must have drained `output_slots` groups
    // ago — one group with the single-buffer baseline, two with the
    // rotating staging pair. The fence lands between the streamed and the
    // output move-in, hence the node split.
    TaskId m_last = m1;
    const bool movein_fence =
        plan.output_fence == OutputFence::MoveIn && group >= plan.output_slots;
    if (plan.move_in_output || movein_fence) {
      std::vector<TaskId> m2_deps{m1};
      if (movein_fence) {
        m2_deps.push_back(
            out_ids[static_cast<size_t>(group - plan.output_slots)]);
      }
      std::function<void(TaskCtx&)> m2_body;
      if (plan.move_in_output) {
        m2_body = [&plan, step](TaskCtx& t) {
          MoveInCtx c(t);
          plan.move_in_output(c, step);
        };
      }
      m_last = graph_.add(TaskStage::MoveIn, "in-out " + tag,
                          std::move(m2_body), std::move(m2_deps));
    }

    // Accumulator fence: the group's first (beta = 0) compute overwrites an
    // output slot whose previous group must have drained.
    std::vector<TaskId> c_deps{m_last};
    if (plan.output_fence == OutputFence::Compute && local == 0 &&
        group >= plan.output_slots) {
      c_deps.push_back(
          out_ids[static_cast<size_t>(group - plan.output_slots)]);
    }
    const bool first_step = step == 0;
    const TaskId cid = graph_.add(
        TaskStage::Compute, "comp " + tag,
        [&plan, step, first_step](TaskCtx& t) {
          if (first_step) {
            for (const Event& e : plan.resident_ready) t.wait(e);
          }
          ComputeCtx c(t);
          plan.compute(c, step);
        },
        std::move(c_deps));
    history_.push_back(cid);
    compute_ids.push_back(cid);

    if (local == plan.steps_per_group - 1 && plan.move_out) {
      const TaskId oid = graph_.add(
          TaskStage::MoveOut, "out " + stem + " g" + std::to_string(group),
          [&plan, group](TaskCtx& t) {
            MoveOutCtx c(t);
            plan.move_out(c, group);
          },
          {cid});
      out_ids.push_back(oid);
      out_regions.push_back(plan.output_region ? plan.output_region(group)
                                               : std::nullopt);
    }
  }

  graph_.run();

  SlabRunResult r;
  r.compute_done.reserve(compute_ids.size());
  for (TaskId id : compute_ids) r.compute_done.push_back(graph_.done(id));
  r.out_done.reserve(out_ids.size());
  for (size_t g = 0; g < out_ids.size(); ++g) {
    const Event out_ev = graph_.done(out_ids[g]);
    r.out_done.push_back(out_ev);
    if (out_regions[g]) {
      r.output_regions.push_back(
          RegionEvent{out_regions[g]->first, out_regions[g]->second, out_ev});
    }
  }
  return r;
}

TaskResult SlabPipeline::run_task(const TaskPlan& plan) {
  const std::string stem = plan.label.empty() ? "task" : plan.label;
  TaskResult r;

  TaskId m = -1, c = -1, o = -1;
  if (plan.move_in || !plan.move_in_waits.empty()) {
    m = graph_.add(TaskStage::MoveIn, stem + " in", [&plan](TaskCtx& t) {
      for (const Event& e : plan.move_in_waits) t.wait(e);
      if (plan.move_in) {
        MoveInCtx mc(t);
        plan.move_in(mc);
      }
    });
  }
  if (plan.compute) {
    // The compute chains on the move-in only when one actually ran; bare
    // move_in_waits fence the H2D stream without gating compute.
    std::vector<TaskId> deps;
    if (plan.move_in) deps.push_back(m);
    c = graph_.add(
        TaskStage::Compute, stem + " comp",
        [&plan](TaskCtx& t) {
          for (const Event& e : plan.compute_waits) t.wait(e);
          ComputeCtx cc(t);
          plan.compute(cc);
        },
        std::move(deps));
  }
  if (plan.move_out) {
    std::vector<TaskId> deps;
    if (c >= 0) deps.push_back(c);
    o = graph_.add(
        TaskStage::MoveOut, stem + " out",
        [&plan](TaskCtx& t) {
          MoveOutCtx mc(t);
          plan.move_out(mc);
        },
        std::move(deps));
  }
  graph_.run();

  if (plan.move_in && m >= 0) r.moved_in = graph_.done(m);
  if (c >= 0) r.computed = graph_.done(c);
  if (o >= 0) r.moved_out = graph_.done(o);
  return r;
}

const std::string& SlabPipeline::plan_description() const {
  description_cache_ = plan_description_;
  if (!graph_.plan_description().empty()) {
    description_cache_ += graph_.plan_description() + "\n";
  }
  return description_cache_;
}

ResidentInput stage_operand(SlabPipeline& p, const Operand& op,
                            const std::string& label,
                            const std::string& copy_name) {
  ResidentInput r;
  if (op.is_resident()) {
    r.ref = op.device_ref();
    r.ready = op.ready_event();
    return r;
  }
  r.owned = sim::ScopedMatrix(p.device(), op.rows(), op.cols(),
                              detail::input_storage(p.options()), label);
  r.ready = p.stage_resident(r.owned.get(), op.host(), copy_name);
  r.ref = sim::DeviceMatrixRef(r.owned.get());
  return r;
}

} // namespace rocqr::ooc
