#include "ooc/pipeline.hpp"

#include <sstream>

#include "common/error.hpp"
#include "ooc/engine_util.hpp"
#include "ooc/resilience.hpp"

namespace rocqr::ooc {

using sim::Event;

// ---------------------------------------------------------------------------
// Stage contexts: thin forwards onto the pipeline's streams with the
// cross-cutting hooks (retry, ABFT, sync_if) applied at the single site.

void MoveInCtx::h2d(sim::DeviceMatrixRef dst, sim::HostConstRef src,
                    const std::string& name) {
  detail::copy_h2d_retry(p_.dev_, dst, src, p_.in_, name, p_.opts_);
  detail::sync_if(p_.dev_, p_.opts_);
}

void MoveInCtx::wait(const Event& e) {
  if (e.valid()) p_.dev_.wait_event(p_.in_, e);
}

void ComputeCtx::gemm(blas::Op opa, blas::Op opb, float alpha,
                      sim::DeviceMatrixRef a, sim::DeviceMatrixRef b,
                      float beta, sim::DeviceMatrixRef c,
                      const std::string& name) {
  detail::checked_gemm(p_.dev_, p_.opts_, opa, opb, alpha, a, b, beta, c,
                       p_.comp_, name);
  detail::sync_if(p_.dev_, p_.opts_);
}

void ComputeCtx::trsm(sim::Device::TrsmKind kind, sim::DeviceMatrixRef tri,
                      sim::DeviceMatrixRef b, const std::string& name) {
  p_.dev_.trsm(kind, tri, b, p_.opts_.precision, p_.comp_, name);
  detail::sync_if(p_.dev_, p_.opts_);
}

void ComputeCtx::wait(const Event& e) {
  if (e.valid()) p_.dev_.wait_event(p_.comp_, e);
}

sim::Stream ComputeCtx::stream() const { return p_.comp_; }

Event ComputeCtx::emit(sim::HostMutRef dst, sim::DeviceMatrixRef src,
                       const std::string& name) {
  Event ready = p_.dev_.create_event();
  p_.dev_.record_event(ready, p_.comp_);
  p_.dev_.wait_event(p_.out_, ready);
  detail::copy_d2h_retry(p_.dev_, dst, src, p_.out_, name, p_.opts_);
  detail::sync_if(p_.dev_, p_.opts_);
  return ready;
}

void MoveOutCtx::d2h(sim::HostMutRef dst, sim::DeviceMatrixRef src,
                     const std::string& name) {
  detail::copy_d2h_retry(p_.dev_, dst, src, p_.out_, name, p_.opts_);
  detail::sync_if(p_.dev_, p_.opts_);
}

void MoveOutCtx::wait(const Event& e) {
  if (e.valid()) p_.dev_.wait_event(p_.out_, e);
}

// ---------------------------------------------------------------------------

SlabPipeline::SlabPipeline(sim::Device& dev, const OocGemmOptions& opts,
                           std::string span_name,
                           std::vector<Event> wait_before)
    : dev_(dev), opts_(opts), window_begin_(dev.trace().size()) {
  if (!span_name.empty()) span_.emplace(dev_, std::move(span_name));
  in_ = dev_.create_stream();
  comp_ = dev_.create_stream();
  out_ = dev_.create_stream();
  for (const Event& e : wait_before) {
    if (e.valid()) dev_.wait_event(in_, e);
  }
  detail::wait_host_inputs(dev_, in_, opts_);
}

Event SlabPipeline::stage_resident(sim::DeviceMatrixRef dst,
                                   sim::HostConstRef src,
                                   const std::string& name) {
  detail::copy_h2d_retry(dev_, dst, src, in_, name, opts_);
  detail::sync_if(dev_, opts_);
  Event ready = dev_.create_event();
  dev_.record_event(ready, in_);
  return ready;
}

Event SlabPipeline::record_input_marker() {
  Event e = dev_.create_event();
  dev_.record_event(e, in_);
  return e;
}

namespace {

std::string describe_plan(const SlabPlan& plan, const OocGemmOptions& opts) {
  std::ostringstream os;
  os << "slab-pipeline " << (plan.label.empty() ? "loop" : plan.label) << ": "
     << plan.steps << " step(s)";
  if (plan.steps_per_group > 1) {
    os << " in groups of " << plan.steps_per_group;
  }
  if (plan.input_slots > 0) {
    os << ", input pool " << plan.input_slots << " slot(s)";
  } else {
    os << ", no streamed-input pool";
  }
  switch (plan.output_fence) {
    case OutputFence::None:
      os << ", output resident (no slot fence)";
      break;
    case OutputFence::MoveIn:
      os << ", output slots " << plan.output_slots << " (move-in fence)";
      break;
    case OutputFence::MoveInCounted:
      os << ", output slots " << plan.output_slots
         << " (move-in fence, counted)";
      break;
    case OutputFence::Compute:
      os << ", output slots " << plan.output_slots << " (compute fence)";
      break;
  }
  os << ", " << plan.resident_ready.size() << " resident operand(s)"
     << ", regions " << (plan.input_region ? "on" : "off") << ", blocksize "
     << opts.blocksize;
  if (opts.tile_cols > 0) os << " x " << opts.tile_cols;
  os << ", ramp "
     << (opts.ramp_up ? "from " + std::to_string(opts.ramp_start) : "off")
     << ", staging " << (opts.staging_buffer ? "on" : "off") << ", depth "
     << opts.pipeline_depth << (opts.synchronous ? ", SYNCHRONOUS" : "")
     << (opts.abft ? ", abft" : "") << "\n";
  return os.str();
}

} // namespace

SlabRunResult SlabPipeline::run(const SlabPlan& plan) {
  ROCQR_CHECK(plan.steps > 0, "SlabPipeline: empty plan");
  ROCQR_CHECK(plan.compute != nullptr, "SlabPipeline: plan needs a compute");
  ROCQR_CHECK(plan.steps_per_group >= 1 &&
                  plan.steps % plan.steps_per_group == 0,
              "SlabPipeline: steps must be whole groups");
  ROCQR_CHECK(plan.output_slots >= 1, "SlabPipeline: output_slots < 1");
  plan_description_ += describe_plan(plan, opts_);

  MoveInCtx min(*this);
  ComputeCtx cctx(*this);
  MoveOutCtx mout(*this);

  SlabRunResult r;
  r.compute_done.reserve(static_cast<size_t>(plan.steps));

  for (index_t step = 0; step < plan.steps; ++step) {
    const index_t group = step / plan.steps_per_group;
    const index_t local = step % plan.steps_per_group;

    // Streamed-input pool fence: the slot this step rotates into was last
    // read by the compute `input_slots` global steps ago; the move-in may
    // not overwrite it earlier. The history spans run() calls so split
    // loops (left-looking projections) fence like one long loop.
    const index_t g_hist = static_cast<index_t>(history_.size());
    if (plan.input_slots > 0) {
      if (plan.count_prefetch) {
        detail::count_slab_prefetch(g_hist >= plan.input_slots);
      }
      if (g_hist >= plan.input_slots) {
        dev_.wait_event(
            in_, history_[static_cast<size_t>(g_hist - plan.input_slots)]);
      }
    } else if (plan.output_fence == OutputFence::MoveInCounted) {
      // No streamed-input pool: the output-slot fence is the prefetch
      // account (blocking outer product, trsm base case).
      if (plan.count_prefetch) {
        detail::count_slab_prefetch(group >= plan.output_slots);
      }
      if (group >= plan.output_slots) {
        dev_.wait_event(
            in_, r.out_done[static_cast<size_t>(group - plan.output_slots)]);
      }
    }

    if (plan.input_region) {
      if (const auto region = plan.input_region(step)) {
        detail::wait_intersecting_regions(dev_, in_, opts_, region->first,
                                          region->second);
      }
    }
    if (plan.move_in) plan.move_in(min, step);

    // §4.1.2 output-slot fence: the working buffer this step's output
    // move-in (and GEMM) reuses must have drained `output_slots` groups
    // ago — one group with the single-buffer baseline, two with the
    // rotating staging pair.
    if (plan.output_fence == OutputFence::MoveIn &&
        group >= plan.output_slots) {
      dev_.wait_event(
          in_, r.out_done[static_cast<size_t>(group - plan.output_slots)]);
    }
    if (plan.move_in_output) plan.move_in_output(min, step);

    Event moved_in = dev_.create_event();
    dev_.record_event(moved_in, in_);
    dev_.wait_event(comp_, moved_in);
    if (step == 0) {
      for (const Event& e : plan.resident_ready) {
        if (e.valid()) dev_.wait_event(comp_, e);
      }
    }
    // Accumulator fence: the group's first (beta = 0) compute overwrites an
    // output slot whose previous group must have drained.
    if (plan.output_fence == OutputFence::Compute && local == 0 &&
        group >= plan.output_slots) {
      dev_.wait_event(
          comp_, r.out_done[static_cast<size_t>(group - plan.output_slots)]);
    }
    plan.compute(cctx, step);

    Event done = dev_.create_event();
    dev_.record_event(done, comp_);
    history_.push_back(done);
    r.compute_done.push_back(done);

    if (local == plan.steps_per_group - 1 && plan.move_out) {
      dev_.wait_event(out_, done);
      plan.move_out(mout, group);
      Event out_ev = dev_.create_event();
      dev_.record_event(out_ev, out_);
      r.out_done.push_back(out_ev);
      if (plan.output_region) {
        if (const auto region = plan.output_region(group)) {
          r.output_regions.push_back(
              RegionEvent{region->first, region->second, out_ev});
        }
      }
    }
  }
  return r;
}

TaskResult SlabPipeline::run_task(const TaskPlan& plan) {
  MoveInCtx min(*this);
  ComputeCtx cctx(*this);
  MoveOutCtx mout(*this);
  TaskResult r;

  for (const Event& e : plan.move_in_waits) {
    if (e.valid()) dev_.wait_event(in_, e);
  }
  if (plan.move_in) {
    plan.move_in(min);
    r.moved_in = dev_.create_event();
    dev_.record_event(r.moved_in, in_);
  }
  if (plan.compute) {
    if (r.moved_in.valid()) dev_.wait_event(comp_, r.moved_in);
    for (const Event& e : plan.compute_waits) {
      if (e.valid()) dev_.wait_event(comp_, e);
    }
    plan.compute(cctx);
    r.computed = dev_.create_event();
    dev_.record_event(r.computed, comp_);
  }
  if (plan.move_out) {
    if (r.computed.valid()) dev_.wait_event(out_, r.computed);
    plan.move_out(mout);
    r.moved_out = dev_.create_event();
    dev_.record_event(r.moved_out, out_);
  }
  return r;
}

ResidentInput stage_operand(SlabPipeline& p, const Operand& op,
                            const std::string& label,
                            const std::string& copy_name) {
  ResidentInput r;
  if (op.is_resident()) {
    r.ref = op.device_ref();
    r.ready = op.ready_event();
    return r;
  }
  r.owned = sim::ScopedMatrix(p.device(), op.rows(), op.cols(),
                              detail::input_storage(p.options()), label);
  r.ready = p.stage_resident(r.owned.get(), op.host(), copy_name);
  r.ref = sim::DeviceMatrixRef(r.owned.get());
  return r;
}

} // namespace rocqr::ooc
