#include "svd/ooc_rsvd.hpp"

#include <algorithm>

#include "blas/transform.hpp"
#include "common/error.hpp"
#include "la/generate.hpp"
#include "la/svd_jacobi.hpp"
#include "ooc/ooc_gemm.hpp"
#include "qr/panel.hpp"
#include "sim/scoped_matrix.hpp"

namespace rocqr::svd {

using blas::Op;
using sim::Device;
using sim::StoragePrecision;

namespace {

/// Device QR of a tall-skinny host matrix that fits resident (m x l with l
/// small): move in, panel-factor, move Q (in place) and R back out.
void device_tall_qr(Device& dev, la::Matrix& y, la::Matrix& r_out,
                    const qr::QrOptions& qopts) {
  const index_t rows = y.rows();
  const index_t cols = y.cols();
  sim::ScopedMatrix panel(dev, rows, cols, StoragePrecision::FP32, "rsvd.Y");
  sim::ScopedMatrix r_dev(dev, cols, cols, StoragePrecision::FP32, "rsvd.R");
  sim::Stream s = dev.create_stream();
  dev.copy_h2d(panel.get(), y.view(), s, "h2d tall panel");
  qr::panel_qr_device(dev, panel.get(), r_dev.get(), s, qopts);
  dev.copy_d2h(y.view(), panel.get(), s, "d2h Q");
  dev.copy_d2h(r_out.view(), r_dev.get(), s, "d2h R");
  dev.synchronize(s);
}

} // namespace

RsvdResult ooc_randomized_svd(Device& dev, sim::HostConstRef a,
                              const RsvdOptions& opts) {
  const index_t m = a.rows;
  const index_t n = a.cols;
  ROCQR_CHECK(m >= n && n >= 1, "ooc_randomized_svd: need m >= n >= 1");
  ROCQR_CHECK(opts.rank >= 1 && opts.oversample >= 0,
              "ooc_randomized_svd: bad rank/oversample");
  const index_t l = std::min(opts.rank + opts.oversample, n);
  ROCQR_CHECK(opts.rank <= l, "ooc_randomized_svd: rank exceeds n");
  ROCQR_CHECK(opts.power_iterations >= 0,
              "ooc_randomized_svd: negative power iterations");

  const size_t window = dev.trace().size();
  ooc::OocGemmOptions gopts;
  gopts.blocksize = std::min(opts.blocksize, m);
  gopts.precision = opts.precision;
  qr::QrOptions qopts;
  qopts.precision = opts.precision;

  // 1. Random range sketch Y = A Ω.
  la::Matrix omega = la::random_normal(n, l, opts.seed);
  la::Matrix y(m, l);
  {
    ooc::GemmProblem sketch;
    sketch.a = a;
    sketch.b = omega.view();
    sketch.c_out = y.view();
    ooc::ooc_gemm(dev, sketch, gopts);
  }
  dev.synchronize();

  // 2. Power iterations with re-orthonormalization (Q replaces Y each time).
  la::Matrix r_small(l, l);
  device_tall_qr(dev, y, r_small, qopts);
  for (int it = 0; it < opts.power_iterations; ++it) {
    la::Matrix z(n, l);
    ooc::GemmProblem pull; // Z = Aᵀ Y
    pull.opa = Op::Trans;
    pull.a = a;
    pull.b = y.view();
    pull.c_out = z.view();
    ooc::ooc_gemm(dev, pull, gopts);
    dev.synchronize();
    device_tall_qr(dev, z, r_small, qopts);
    ooc::GemmProblem push; // Y = A Z
    push.a = a;
    push.b = z.view();
    push.c_out = y.view();
    ooc::ooc_gemm(dev, push, gopts);
    dev.synchronize();
    device_tall_qr(dev, y, r_small, qopts);
  }

  // 3. Project: B = Q_yᵀ A (l x n), both factors streamed in k-slabs.
  la::Matrix b(l, n);
  ooc::inner_product_recursive(dev, ooc::Operand::on_host(y.view()),
                               ooc::Operand::on_host(a), b.view(), gopts);
  dev.synchronize();

  // 4. Bᵀ = Q_b R_b on the device, then the small SVD on the host.
  la::Matrix bt(n, l);
  blas::transpose(l, n, b.data(), b.ld(), bt.data(), bt.ld());
  la::Matrix rb(l, l);
  device_tall_qr(dev, bt, rb, qopts);

  la::Matrix rbt(l, l);
  blas::transpose(l, l, rb.data(), rb.ld(), rbt.data(), rbt.ld());
  const la::SvdResult small = la::svd_jacobi(rbt.view());

  // 5. Assemble and truncate: U = Q_y U₂, V = Q_b V₂.
  RsvdResult result;
  result.u = la::Matrix(m, opts.rank);
  result.v = la::Matrix(n, opts.rank);
  result.sigma.assign(small.sigma.begin(),
                      small.sigma.begin() + opts.rank);
  blas::gemm(Op::NoTrans, Op::NoTrans, m, opts.rank, l, 1.0f, y.data(),
             y.ld(), small.u.data(), small.u.ld(), 0.0f, result.u.data(),
             result.u.ld());
  blas::gemm(Op::NoTrans, Op::NoTrans, n, opts.rank, l, 1.0f, bt.data(),
             bt.ld(), small.v.data(), small.v.ld(), 0.0f, result.v.data(),
             result.v.ld());

  const sim::TraceSummary summary = sim::summarize(dev.trace(), window);
  result.seconds = summary.span();
  result.bytes_h2d = summary.bytes_h2d;
  result.bytes_d2h = summary.bytes_d2h;
  return result;
}

} // namespace rocqr::svd
