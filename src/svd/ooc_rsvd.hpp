// Out-of-core randomized SVD — the application domain of the paper's
// references [14, 15] (out-of-memory SVD frameworks; "reducing the amount
// of out-of-core data access for GPU-accelerated randomized SVD"), built
// from this library's streamed GEMM engines and device panel QR:
//
//   Y   = A·Ω              (streamed row slabs, Ω resident)      [range]
//   Y   = A·(Aᵀ·Y)         power iterations, re-orthonormalized
//   Q_y = qr(Y)            (fits the device: m x l, l small)
//   B   = Q_yᵀ·A           (k-split inner product, both streamed)
//   Bᵀ  = Q_b·R_b          (device panel QR)
//   R_bᵀ = U₂ Σ V₂ᵀ        (small one-sided Jacobi SVD on the host)
//   A  ≈ (Q_y·U₂) Σ (Q_b·V₂)ᵀ, truncated to the requested rank.
//
// Only O((m+n)·l) words ever live on the device or in extra host storage;
// A itself streams exactly 2 + 2·power_iterations times.
#pragma once

#include <cstdint>
#include <vector>

#include "blas/gemm.hpp"
#include "la/matrix.hpp"
#include "sim/device.hpp"

namespace rocqr::svd {

struct RsvdOptions {
  index_t rank = 16;
  index_t oversample = 8;
  int power_iterations = 1;
  index_t blocksize = 16384; ///< streamed slab width
  blas::GemmPrecision precision = blas::GemmPrecision::FP16_FP32;
  std::uint64_t seed = 1234;
};

struct RsvdResult {
  la::Matrix u;              ///< m x rank
  std::vector<double> sigma; ///< rank values, descending
  la::Matrix v;              ///< n x rank
  sim_time_t seconds = 0;    ///< simulated wall time of the whole pipeline
  bytes_t bytes_h2d = 0;
  bytes_t bytes_d2h = 0;
};

/// Approximates the top-`rank` SVD of the host matrix `a` (m x n, m >= n,
/// may be phantom in Phantom mode — factors are then unspecified but the
/// schedule/statistics are exact). Small O(l²)/O(l·n) host-side glue
/// (transposes, l x l GEMMs, the Jacobi SVD) runs on the host untimed, as
/// in the real systems this models.
RsvdResult ooc_randomized_svd(sim::Device& dev, sim::HostConstRef a,
                              const RsvdOptions& opts);

} // namespace rocqr::svd
