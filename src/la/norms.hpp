// Matrix norms and QR quality metrics, all accumulated in double.
#pragma once

#include "la/matrix.hpp"

namespace rocqr::la {

double frobenius_norm(ConstMatrixView a);
double max_abs(ConstMatrixView a);

/// max_j sum_i |a(i,j)| (induced 1-norm).
double one_norm(ConstMatrixView a);

/// Relative factorization residual ‖A - Q·R‖_F / ‖A‖_F.
/// Q is m x n, R is n x n upper triangular (lower part ignored).
double qr_residual(ConstMatrixView a, ConstMatrixView q, ConstMatrixView r);

/// Loss of orthogonality ‖QᵀQ - I‖_F.
double orthogonality_error(ConstMatrixView q);

/// True iff the strict lower triangle is exactly zero.
bool is_upper_triangular(ConstMatrixView r);

/// ‖A - B‖_F / max(‖B‖_F, tiny) — relative difference of two matrices.
double relative_difference(ConstMatrixView a, ConstMatrixView b);

} // namespace rocqr::la
