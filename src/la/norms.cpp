#include "la/norms.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace rocqr::la {

double frobenius_norm(ConstMatrixView a) {
  double acc = 0.0;
  for (index_t j = 0; j < a.cols(); ++j) {
    for (index_t i = 0; i < a.rows(); ++i) {
      const double v = static_cast<double>(a(i, j));
      acc += v * v;
    }
  }
  return std::sqrt(acc);
}

double max_abs(ConstMatrixView a) {
  double best = 0.0;
  for (index_t j = 0; j < a.cols(); ++j) {
    for (index_t i = 0; i < a.rows(); ++i) {
      best = std::max(best, std::fabs(static_cast<double>(a(i, j))));
    }
  }
  return best;
}

double one_norm(ConstMatrixView a) {
  double best = 0.0;
  for (index_t j = 0; j < a.cols(); ++j) {
    double col = 0.0;
    for (index_t i = 0; i < a.rows(); ++i) {
      col += std::fabs(static_cast<double>(a(i, j)));
    }
    best = std::max(best, col);
  }
  return best;
}

double qr_residual(ConstMatrixView a, ConstMatrixView q, ConstMatrixView r) {
  ROCQR_CHECK(q.rows() == a.rows() && q.cols() == a.cols(),
              "qr_residual: Q shape mismatch");
  ROCQR_CHECK(r.rows() >= a.cols() && r.cols() == a.cols(),
              "qr_residual: R shape mismatch");
  const index_t m = a.rows();
  const index_t n = a.cols();
  double num = 0.0;
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      double qr = 0.0;
      // R upper triangular: only l <= j contributes.
      for (index_t l = 0; l <= j; ++l) {
        qr += static_cast<double>(q(i, l)) * static_cast<double>(r(l, j));
      }
      const double d = static_cast<double>(a(i, j)) - qr;
      num += d * d;
    }
  }
  const double den = frobenius_norm(a);
  return den > 0.0 ? std::sqrt(num) / den : std::sqrt(num);
}

double orthogonality_error(ConstMatrixView q) {
  const index_t n = q.cols();
  const index_t m = q.rows();
  double acc = 0.0;
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i <= j; ++i) {
      double dot = 0.0;
      for (index_t l = 0; l < m; ++l) {
        dot += static_cast<double>(q(l, i)) * static_cast<double>(q(l, j));
      }
      const double d = dot - (i == j ? 1.0 : 0.0);
      // Off-diagonal entries appear twice in QᵀQ - I.
      acc += (i == j ? 1.0 : 2.0) * d * d;
    }
  }
  return std::sqrt(acc);
}

bool is_upper_triangular(ConstMatrixView r) {
  for (index_t j = 0; j < r.cols(); ++j) {
    for (index_t i = j + 1; i < r.rows(); ++i) {
      if (r(i, j) != 0.0f) return false;
    }
  }
  return true;
}

double relative_difference(ConstMatrixView a, ConstMatrixView b) {
  ROCQR_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
              "relative_difference: shape mismatch");
  double num = 0.0;
  for (index_t j = 0; j < a.cols(); ++j) {
    for (index_t i = 0; i < a.rows(); ++i) {
      const double d =
          static_cast<double>(a(i, j)) - static_cast<double>(b(i, j));
      num += d * d;
    }
  }
  const double den = frobenius_norm(b);
  return den > 0.0 ? std::sqrt(num) / den : std::sqrt(num);
}

} // namespace rocqr::la
