#include "la/matrix.hpp"

#include "blas/transform.hpp"

namespace rocqr::la {

Matrix materialize(ConstMatrixView v) {
  Matrix out(v.rows(), v.cols());
  blas::copy_matrix(v.rows(), v.cols(), v.data(), v.ld(), out.data(),
                    out.ld());
  return out;
}

Matrix identity(index_t n) {
  Matrix out(n, n);
  for (index_t i = 0; i < n; ++i) out(i, i) = 1.0f;
  return out;
}

} // namespace rocqr::la
