// Condition-number estimation without an SVD: power iteration on AᵀA for
// the largest singular value and inverse iteration through a QR factor for
// the smallest. Used by tests to validate the fixed-condition generator and
// by applications deciding whether CGS (cond² ε error) is safe.
#pragma once

#include <cstdint>

#include "la/matrix.hpp"

namespace rocqr::la {

/// Largest singular value of A (m x n, m >= n) by power iteration on AᵀA.
double estimate_largest_singular_value(ConstMatrixView a, int iterations = 60,
                                       std::uint64_t seed = 1);

/// Smallest singular value via inverse power iteration using a given upper
/// triangular R with AᵀA = RᵀR (e.g. from a QR or Cholesky factor).
double estimate_smallest_singular_value(ConstMatrixView r, int iterations = 60,
                                        std::uint64_t seed = 2);

/// 2-norm condition estimate of A (m x n, m >= n): factors internally with
/// reorthogonalized Gram-Schmidt, then runs both power iterations.
double estimate_condition(ConstMatrixView a, int iterations = 60);

} // namespace rocqr::la
