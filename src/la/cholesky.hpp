// Upper Cholesky factorization, used by the CholeskyQR panel variant and by
// test oracles.
#pragma once

#include "la/matrix.hpp"

namespace rocqr::la {

/// In-place upper Cholesky: A = RᵀR with R upper triangular, written into
/// the upper triangle of `a` (strict lower triangle zeroed).
/// Throws InvalidArgument if the matrix is not (numerically) SPD.
void cholesky_upper(MatrixView a);

} // namespace rocqr::la
