// Column-major matrix container and non-owning views.
//
// Everything in this project is column-major fp32 on the host (the paper
// moves fp32 tiles over PCIe and rounds to fp16 only inside TC-GEMM), so a
// single concrete container avoids template bloat in a 1-core build.
#pragma once

#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace rocqr::la {

class ConstMatrixView;

/// Non-owning mutable view: (data, rows, cols, leading dimension).
class MatrixView {
 public:
  MatrixView() = default;
  MatrixView(float* data, index_t rows, index_t cols, index_t ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    ROCQR_CHECK(rows >= 0 && cols >= 0, "MatrixView: negative dimension");
    ROCQR_CHECK(ld >= (rows > 0 ? rows : 1), "MatrixView: ld < rows");
  }

  float* data() const { return data_; }
  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t ld() const { return ld_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  float& operator()(index_t i, index_t j) const {
    return data_[i + j * ld_];
  }

  /// Sub-block [i0, i0+r) x [j0, j0+c).
  MatrixView block(index_t i0, index_t j0, index_t r, index_t c) const {
    ROCQR_CHECK(i0 >= 0 && j0 >= 0 && r >= 0 && c >= 0 && i0 + r <= rows_ &&
                    j0 + c <= cols_,
                "MatrixView::block out of range");
    return MatrixView(data_ + i0 + j0 * ld_, r, c, ld_);
  }

  MatrixView columns(index_t j0, index_t c) const {
    return block(0, j0, rows_, c);
  }
  MatrixView rows_range(index_t i0, index_t r) const {
    return block(i0, 0, r, cols_);
  }

 private:
  float* data_ = nullptr;
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t ld_ = 1;
};

/// Non-owning read-only view.
class ConstMatrixView {
 public:
  ConstMatrixView() = default;
  ConstMatrixView(const float* data, index_t rows, index_t cols, index_t ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    ROCQR_CHECK(rows >= 0 && cols >= 0, "ConstMatrixView: negative dimension");
    ROCQR_CHECK(ld >= (rows > 0 ? rows : 1), "ConstMatrixView: ld < rows");
  }
  // Implicit from mutable view: read-only adoption is always safe.
  ConstMatrixView(MatrixView v)
      : data_(v.data()), rows_(v.rows()), cols_(v.cols()), ld_(v.ld()) {}

  const float* data() const { return data_; }
  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t ld() const { return ld_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  const float& operator()(index_t i, index_t j) const {
    return data_[i + j * ld_];
  }

  ConstMatrixView block(index_t i0, index_t j0, index_t r, index_t c) const {
    ROCQR_CHECK(i0 >= 0 && j0 >= 0 && r >= 0 && c >= 0 && i0 + r <= rows_ &&
                    j0 + c <= cols_,
                "ConstMatrixView::block out of range");
    return ConstMatrixView(data_ + i0 + j0 * ld_, r, c, ld_);
  }

  ConstMatrixView columns(index_t j0, index_t c) const {
    return block(0, j0, rows_, c);
  }
  ConstMatrixView rows_range(index_t i0, index_t r) const {
    return block(i0, 0, r, cols_);
  }

 private:
  const float* data_ = nullptr;
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t ld_ = 1;
};

/// Owning column-major matrix, contiguous (ld == rows).
class Matrix {
 public:
  Matrix() = default;
  Matrix(index_t rows, index_t cols)
      : rows_(rows), cols_(cols),
        storage_(static_cast<size_t>(rows) * static_cast<size_t>(cols), 0.0f) {
    ROCQR_CHECK(rows >= 0 && cols >= 0, "Matrix: negative dimension");
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t ld() const { return rows_ > 0 ? rows_ : 1; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  float* data() { return storage_.data(); }
  const float* data() const { return storage_.data(); }

  float& operator()(index_t i, index_t j) { return storage_[static_cast<size_t>(i + j * ld())]; }
  const float& operator()(index_t i, index_t j) const {
    return storage_[static_cast<size_t>(i + j * ld())];
  }

  MatrixView view() { return MatrixView(data(), rows_, cols_, ld()); }
  ConstMatrixView view() const {
    return ConstMatrixView(data(), rows_, cols_, ld());
  }
  MatrixView block(index_t i0, index_t j0, index_t r, index_t c) {
    return view().block(i0, j0, r, c);
  }
  ConstMatrixView block(index_t i0, index_t j0, index_t r, index_t c) const {
    return view().block(i0, j0, r, c);
  }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<float> storage_;
};

/// Deep copy of any view into a fresh contiguous Matrix.
Matrix materialize(ConstMatrixView v);

/// Identity matrix.
Matrix identity(index_t n);

} // namespace rocqr::la
