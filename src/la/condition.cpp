#include "la/condition.hpp"

#include <cmath>
#include <vector>

#include "blas/gemm.hpp"
#include "blas/trsm.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "la/cholesky.hpp"

namespace rocqr::la {

namespace {

void normalize(std::vector<float>& v) {
  double norm = 0.0;
  for (const float x : v) norm += static_cast<double>(x) * static_cast<double>(x);
  norm = std::sqrt(norm);
  ROCQR_CHECK(norm > 0.0, "condition estimate: zero iteration vector");
  const float inv = static_cast<float>(1.0 / norm);
  for (float& x : v) x *= inv;
}

std::vector<float> random_unit(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(static_cast<size_t>(n));
  for (float& x : v) x = static_cast<float>(rng.normal());
  normalize(v);
  return v;
}

/// Gram matrix G = AᵀA (full symmetric storage).
Matrix gram(ConstMatrixView a) {
  Matrix g(a.cols(), a.cols());
  blas::gemm(blas::Op::Trans, blas::Op::NoTrans, a.cols(), a.cols(), a.rows(),
             1.0f, a.data(), a.ld(), a.data(), a.ld(), 0.0f, g.data(),
             g.ld());
  return g;
}

} // namespace

double estimate_largest_singular_value(ConstMatrixView a, int iterations,
                                       std::uint64_t seed) {
  ROCQR_CHECK(a.rows() >= a.cols() && a.cols() >= 1,
              "estimate_largest_singular_value: need m >= n >= 1");
  ROCQR_CHECK(iterations >= 1, "estimate_largest_singular_value: iterations");
  const Matrix g = gram(a);
  const index_t n = a.cols();
  std::vector<float> v = random_unit(n, seed);
  std::vector<float> w(static_cast<size_t>(n));
  double lambda = 0.0;
  for (int it = 0; it < iterations; ++it) {
    blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, n, 1, n, 1.0f, g.data(),
               g.ld(), v.data(), n, 0.0f, w.data(), n);
    double norm = 0.0;
    for (const float x : w) norm += static_cast<double>(x) * static_cast<double>(x);
    lambda = std::sqrt(norm); // |G v| with |v| = 1 -> Rayleigh-ish estimate
    v = w;
    normalize(v);
  }
  return std::sqrt(lambda);
}

double estimate_smallest_singular_value(ConstMatrixView r, int iterations,
                                        std::uint64_t seed) {
  ROCQR_CHECK(r.rows() == r.cols() && r.rows() >= 1,
              "estimate_smallest_singular_value: R must be square");
  ROCQR_CHECK(iterations >= 1, "estimate_smallest_singular_value: iterations");
  const index_t n = r.rows();
  std::vector<float> v = random_unit(n, seed);
  double lambda_inv = 0.0;
  for (int it = 0; it < iterations; ++it) {
    // w = (RᵀR)⁻¹ v via two triangular solves; power-iterate on G⁻¹.
    std::vector<float> w = v;
    blas::trsm_left_upper_trans(n, 1, r.data(), r.ld(), w.data(), n);
    blas::trsm_left_upper(n, 1, r.data(), r.ld(), w.data(), n);
    double norm = 0.0;
    for (const float x : w) norm += static_cast<double>(x) * static_cast<double>(x);
    lambda_inv = std::sqrt(norm);
    v = std::move(w);
    normalize(v);
  }
  ROCQR_CHECK(lambda_inv > 0.0, "estimate_smallest_singular_value: breakdown");
  return 1.0 / std::sqrt(lambda_inv);
}

double estimate_condition(ConstMatrixView a, int iterations) {
  const double sigma_max = estimate_largest_singular_value(a, iterations);
  // R from the Cholesky factor of AᵀA (limits reliable range to cond ~< 1e4
  // in fp32, beyond which the Gram matrix loses definiteness — callers
  // needing more range should pass a QR-derived R to the sigma_min routine).
  Matrix g = gram(a);
  cholesky_upper(g.view());
  const double sigma_min =
      estimate_smallest_singular_value(g.view(), iterations);
  return sigma_max / sigma_min;
}

} // namespace rocqr::la
