#include "la/svd_jacobi.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace rocqr::la {

SvdResult svd_jacobi(ConstMatrixView a, int max_sweeps, double tolerance) {
  ROCQR_CHECK(a.rows() >= a.cols() && a.cols() >= 1,
              "svd_jacobi: need m >= n >= 1");
  ROCQR_CHECK(max_sweeps >= 1 && tolerance > 0, "svd_jacobi: bad parameters");
  const index_t m = a.rows();
  const index_t n = a.cols();

  Matrix w = materialize(a); // columns rotated toward mutual orthogonality
  Matrix v = identity(n);    // accumulates the right rotations

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool converged = true;
    for (index_t p = 0; p < n - 1; ++p) {
      for (index_t q = p + 1; q < n; ++q) {
        // Gram entries of the column pair, in double.
        double app = 0.0;
        double aqq = 0.0;
        double apq = 0.0;
        for (index_t i = 0; i < m; ++i) {
          const double x = w(i, p);
          const double y = w(i, q);
          app += x * x;
          aqq += y * y;
          apq += x * y;
        }
        if (std::fabs(apq) <= tolerance * std::sqrt(app * aqq)) continue;
        converged = false;
        // Jacobi rotation zeroing the (p, q) Gram entry.
        const double zeta = (aqq - app) / (2.0 * apq);
        const double t = (zeta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (index_t i = 0; i < m; ++i) {
          const double x = w(i, p);
          const double y = w(i, q);
          w(i, p) = static_cast<float>(c * x - s * y);
          w(i, q) = static_cast<float>(s * x + c * y);
        }
        for (index_t i = 0; i < n; ++i) {
          const double x = v(i, p);
          const double y = v(i, q);
          v(i, p) = static_cast<float>(c * x - s * y);
          v(i, q) = static_cast<float>(s * x + c * y);
        }
      }
    }
    if (converged) break;
  }

  // Singular values = column norms; sort descending and permute U, V.
  std::vector<double> norms(static_cast<size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    double acc = 0.0;
    for (index_t i = 0; i < m; ++i) {
      acc += static_cast<double>(w(i, j)) * static_cast<double>(w(i, j));
    }
    norms[static_cast<size_t>(j)] = std::sqrt(acc);
  }
  std::vector<index_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](index_t lhs, index_t rhs) {
    return norms[static_cast<size_t>(lhs)] > norms[static_cast<size_t>(rhs)];
  });

  SvdResult result{Matrix(m, n), std::vector<double>(static_cast<size_t>(n)),
                   Matrix(n, n)};
  for (index_t j = 0; j < n; ++j) {
    const index_t src = order[static_cast<size_t>(j)];
    const double sigma = norms[static_cast<size_t>(src)];
    result.sigma[static_cast<size_t>(j)] = sigma;
    const double inv = sigma > 0.0 ? 1.0 / sigma : 0.0;
    for (index_t i = 0; i < m; ++i) {
      result.u(i, j) = static_cast<float>(static_cast<double>(w(i, src)) * inv);
    }
    for (index_t i = 0; i < n; ++i) result.v(i, j) = v(i, src);
  }
  return result;
}

} // namespace rocqr::la
