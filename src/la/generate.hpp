// Test/benchmark matrix generators.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "la/matrix.hpp"

namespace rocqr::la {

/// i.i.d. uniform in [-1, 1).
Matrix random_uniform(index_t rows, index_t cols, std::uint64_t seed);

/// i.i.d. standard normal. Gaussian matrices are extremely well conditioned
/// for m >> n, which is the benign case for classic Gram-Schmidt.
Matrix random_normal(index_t rows, index_t cols, std::uint64_t seed);

/// Matrix with prescribed 2-norm condition number: A = H_u · D · H_v where
/// H_* are Householder reflectors and D has geometrically spaced singular
/// values in [1/cond, 1]. Lets tests probe CGS's cond(A)^2 orthogonality
/// loss without needing an SVD.
Matrix random_with_condition(index_t rows, index_t cols, double cond,
                             std::uint64_t seed);

/// Hilbert-like pathologically conditioned matrix: a(i,j) = 1/(i+j+1).
Matrix hilbert(index_t rows, index_t cols);

/// Strictly diagonally dominant square matrix (uniform off-diagonals plus a
/// dominant diagonal) — safe for LU without pivoting.
Matrix random_diagonally_dominant(index_t n, std::uint64_t seed);

/// Symmetric positive definite matrix: BᵀB + n·I with B uniform.
Matrix random_spd(index_t n, std::uint64_t seed);

} // namespace rocqr::la
