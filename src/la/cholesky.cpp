#include "la/cholesky.hpp"

#include <cmath>

#include "common/error.hpp"

namespace rocqr::la {

void cholesky_upper(MatrixView a) {
  ROCQR_CHECK(a.rows() == a.cols(), "cholesky_upper: matrix must be square");
  const index_t n = a.rows();
  for (index_t j = 0; j < n; ++j) {
    double diag = static_cast<double>(a(j, j));
    for (index_t l = 0; l < j; ++l) {
      diag -= static_cast<double>(a(l, j)) * static_cast<double>(a(l, j));
    }
    ROCQR_CHECK(diag > 0.0, "cholesky_upper: matrix is not positive definite");
    const double rjj = std::sqrt(diag);
    a(j, j) = static_cast<float>(rjj);
    for (index_t k = j + 1; k < n; ++k) {
      double v = static_cast<double>(a(j, k));
      for (index_t l = 0; l < j; ++l) {
        v -= static_cast<double>(a(l, j)) * static_cast<double>(a(l, k));
      }
      a(j, k) = static_cast<float>(v / rjj);
    }
  }
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j + 1; i < n; ++i) a(i, j) = 0.0f;
  }
}

} // namespace rocqr::la
