// One-sided Jacobi SVD for small dense matrices — the in-core kernel the
// out-of-core randomized SVD (src/svd) reduces its projected problem to.
#pragma once

#include "la/matrix.hpp"

namespace rocqr::la {

struct SvdResult {
  Matrix u;                  ///< m x n, orthonormal columns
  std::vector<double> sigma; ///< n singular values, descending
  Matrix v;                  ///< n x n, orthonormal
};

/// Thin SVD A = U diag(sigma) Vᵀ for m >= n (one-sided Jacobi: rotate
/// column pairs until mutual orthogonality, then read off norms).
/// Intended for small n (the rotations are O(n² m) per sweep).
SvdResult svd_jacobi(ConstMatrixView a, int max_sweeps = 30,
                     double tolerance = 1e-10);

} // namespace rocqr::la
