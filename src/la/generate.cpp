#include "la/generate.hpp"

#include <cmath>
#include <vector>

#include "blas/level1.hpp"
#include "common/error.hpp"

namespace rocqr::la {

namespace {

/// Applies the Householder reflector H = I - 2 v vᵀ / (vᵀv) to A from the
/// left: A := H A. v has length A.rows().
void apply_reflector_left(MatrixView a, const std::vector<double>& v) {
  const index_t m = a.rows();
  double vtv = 0.0;
  for (index_t i = 0; i < m; ++i) vtv += v[static_cast<size_t>(i)] * v[static_cast<size_t>(i)];
  if (vtv == 0.0) return;
  const double scale = 2.0 / vtv;
  for (index_t j = 0; j < a.cols(); ++j) {
    double vta = 0.0;
    for (index_t i = 0; i < m; ++i) {
      vta += v[static_cast<size_t>(i)] * static_cast<double>(a(i, j));
    }
    const double w = scale * vta;
    for (index_t i = 0; i < m; ++i) {
      a(i, j) = static_cast<float>(static_cast<double>(a(i, j)) -
                                   w * v[static_cast<size_t>(i)]);
    }
  }
}

/// A := A H (reflector applied from the right, v has length A.cols()).
void apply_reflector_right(MatrixView a, const std::vector<double>& v) {
  const index_t n = a.cols();
  double vtv = 0.0;
  for (index_t j = 0; j < n; ++j) vtv += v[static_cast<size_t>(j)] * v[static_cast<size_t>(j)];
  if (vtv == 0.0) return;
  const double scale = 2.0 / vtv;
  for (index_t i = 0; i < a.rows(); ++i) {
    double avt = 0.0;
    for (index_t j = 0; j < n; ++j) {
      avt += static_cast<double>(a(i, j)) * v[static_cast<size_t>(j)];
    }
    const double w = scale * avt;
    for (index_t j = 0; j < n; ++j) {
      a(i, j) = static_cast<float>(static_cast<double>(a(i, j)) -
                                   w * v[static_cast<size_t>(j)]);
    }
  }
}

std::vector<double> random_vector(index_t n, Rng& rng) {
  std::vector<double> v(static_cast<size_t>(n));
  for (auto& x : v) x = rng.normal();
  return v;
}

} // namespace

Matrix random_uniform(index_t rows, index_t cols, std::uint64_t seed) {
  Matrix a(rows, cols);
  Rng rng(seed);
  float* p = a.data();
  const size_t count = static_cast<size_t>(rows) * static_cast<size_t>(cols);
  for (size_t i = 0; i < count; ++i) {
    p[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return a;
}

Matrix random_normal(index_t rows, index_t cols, std::uint64_t seed) {
  Matrix a(rows, cols);
  Rng rng(seed);
  float* p = a.data();
  const size_t count = static_cast<size_t>(rows) * static_cast<size_t>(cols);
  for (size_t i = 0; i < count; ++i) {
    p[i] = static_cast<float>(rng.normal());
  }
  return a;
}

Matrix random_with_condition(index_t rows, index_t cols, double cond,
                             std::uint64_t seed) {
  ROCQR_CHECK(rows >= cols && cols >= 1, "random_with_condition: need m >= n >= 1");
  ROCQR_CHECK(cond >= 1.0, "random_with_condition: cond must be >= 1");
  Matrix a(rows, cols);
  // D: geometric singular values from 1 down to 1/cond on the diagonal.
  for (index_t j = 0; j < cols; ++j) {
    const double t = cols == 1 ? 0.0
                               : static_cast<double>(j) /
                                     static_cast<double>(cols - 1);
    a(j, j) = static_cast<float>(std::pow(cond, -t));
  }
  // Two reflectors on each side randomize the singular vector bases without
  // changing singular values. Two suffice to destroy all sparsity structure.
  Rng rng(seed);
  for (int rep = 0; rep < 2; ++rep) {
    apply_reflector_left(a.view(), random_vector(rows, rng));
    apply_reflector_right(a.view(), random_vector(cols, rng));
  }
  return a;
}

Matrix random_diagonally_dominant(index_t n, std::uint64_t seed) {
  Matrix a = random_uniform(n, n, seed);
  for (index_t i = 0; i < n; ++i) {
    a(i, i) = static_cast<float>(n) + 2.0f + a(i, i);
  }
  return a;
}

Matrix random_spd(index_t n, std::uint64_t seed) {
  const Matrix b = random_uniform(n, n, seed);
  Matrix a(n, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i <= j; ++i) {
      double acc = 0.0;
      for (index_t p = 0; p < n; ++p) {
        acc += static_cast<double>(b(p, i)) * static_cast<double>(b(p, j));
      }
      const float v = static_cast<float>(acc) + (i == j ? static_cast<float>(n) : 0.0f);
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  return a;
}

Matrix hilbert(index_t rows, index_t cols) {
  Matrix a(rows, cols);
  for (index_t j = 0; j < cols; ++j) {
    for (index_t i = 0; i < rows; ++i) {
      a(i, j) = static_cast<float>(1.0 / static_cast<double>(i + j + 1));
    }
  }
  return a;
}

} // namespace rocqr::la
