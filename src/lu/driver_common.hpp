// Internal helpers shared by the OOC LU and Cholesky drivers.
#pragma once

#include <algorithm>

#include "ooc/gemm_engines.hpp"
#include "lu/ooc_lu.hpp"
#include "sim/device.hpp"

namespace rocqr::lu::detail {

inline ooc::OocGemmOptions engine_options(const FactorOptions& opts) {
  ooc::OocGemmOptions g;
  g.blocksize = opts.blocksize;
  g.ramp_up = opts.ramp_up;
  g.ramp_start = opts.ramp_start;
  g.staging_buffer = opts.staging_buffer;
  g.pipeline_depth = opts.pipeline_depth;
  g.precision = opts.precision;
  return g;
}

inline void sync_unless_overlap(sim::Device& dev, const FactorOptions& opts) {
  if (!opts.overlap) dev.synchronize();
}

/// Column-panel width for a trailing update whose resident factor is
/// h x rest: shrink until the factor panel plus the streamed pools fit.
/// Returns 0 for "unsplit".
inline index_t plan_update_split(const sim::Device& dev,
                                 const FactorOptions& opts, index_t rows,
                                 index_t h, index_t rest) {
  const double budget = static_cast<double>(dev.memory_capacity()) *
                        opts.memory_budget_fraction;
  const double in_bytes =
      opts.precision == blas::GemmPrecision::FP16_FP32 ? 2.0 : 4.0;
  const double bs = static_cast<double>(std::min(opts.blocksize, rows));
  const double depth = static_cast<double>(opts.pipeline_depth);
  const auto fits = [&](index_t np) {
    const double b_bytes = static_cast<double>(h) * static_cast<double>(np) * in_bytes;
    const double a_slabs = depth * bs * static_cast<double>(h) * in_bytes;
    const double c_slabs = (opts.staging_buffer ? 2.0 : 1.0) * bs *
                           static_cast<double>(np) * 4.0;
    return b_bytes + a_slabs + c_slabs <= budget;
  };
  if (fits(rest)) return 0;
  index_t np = rest;
  while (np > opts.blocksize && !fits(np)) {
    np = (np + 1) / 2;
    np = std::min(rest, (np + opts.blocksize - 1) / opts.blocksize *
                            opts.blocksize);
    if (np <= opts.blocksize) break;
  }
  return std::min(np, rest);
}

} // namespace rocqr::lu::detail
