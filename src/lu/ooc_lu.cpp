#include "lu/ooc_lu.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "lu/driver_common.hpp"
#include "lu/incore.hpp"
#include "ooc/operand.hpp"
#include "ooc/pipeline.hpp"
#include "ooc/slab_schedule.hpp"
#include "ooc/trsm_engine.hpp"
#include "qr/driver_util.hpp"

namespace rocqr::lu {

using ooc::Operand;
using sim::Device;
using sim::DeviceMatrix;
using sim::DeviceMatrixRef;
using sim::Event;
using sim::HostMutRef;
using sim::StoragePrecision;
using sim::Stream;

namespace {

/// Enqueues the in-core LU panel factorization on `stream`: `panel`
/// (rows x w, fp32 device) holds the combined L\U factor on exit.
void panel_lu_device(Device& dev, const DeviceMatrix& panel, Stream stream,
                     const FactorOptions& opts) {
  const index_t m = panel.rows();
  const index_t w = panel.cols();
  // LU performs ~m w² flops (half of CGS QR's 2 m w²); model it at the same
  // sustained panel rate as the QR panel solver.
  const double flops = static_cast<double>(m) * w * w;
  const sim_time_t seconds =
      dev.model().spec().kernel_latency_s + flops / dev.model().panel_rate(m, w);
  dev.custom_compute(
      stream, seconds, static_cast<flops_t>(flops), sim::OpKind::Panel,
      "panel_lu " + std::to_string(m) + "x" + std::to_string(w), [&]() {
        la::Matrix host_panel = dev.download(panel);
        lu_nopiv_recursive(host_panel.view(), opts.panel_base, opts.precision);
        dev.upload(panel, host_panel.view());
      });
}

struct PanelResult {
  DeviceMatrix panel;  // resident combined L\U factor (caller frees)
  Event factored;      // panel kernel finished
  Event on_host;       // factor landed back in the host matrix
};

/// One panel step shared by both drivers, expressed as a one-shot
/// move-in / factor / drain task on the driver's pipeline.
PanelResult factor_lu_panel(ooc::SlabPipeline& pipe, HostMutRef a, index_t j0,
                            index_t w, Event prev, const FactorOptions& opts) {
  Device& dev = pipe.device();
  const index_t below = a.rows - j0;
  PanelResult r;
  r.panel = dev.allocate(below, w, StoragePrecision::FP32, "lu.panel");

  ooc::TaskPlan task;
  task.move_in_waits = {prev};
  task.move_in = [&](ooc::MoveInCtx& ctx) {
    ctx.h2d(r.panel, ooc::host_block(sim::as_const(a), j0, j0, below, w),
            "h2d LU panel");
  };
  task.compute = [&](ooc::ComputeCtx& ctx) {
    panel_lu_device(dev, r.panel, ctx.stream(), opts);
  };
  task.move_out = [&](ooc::MoveOutCtx& ctx) {
    ctx.d2h(ooc::host_block(a, j0, j0, below, w), r.panel, "d2h LU panel");
  };
  const ooc::TaskResult done = pipe.run_task(task);
  r.factored = done.computed;
  r.on_host = done.moved_out;
  return r;
}

} // namespace

FactorStats blocking_ooc_lu(Device& dev, HostMutRef a,
                            const FactorOptions& opts) {
  const index_t m = a.rows;
  const index_t n = a.cols;
  ROCQR_CHECK(m >= n && n >= 1, "blocking_ooc_lu: need m >= n >= 1");
  const index_t b = std::min(opts.blocksize, n);

  ooc::SlabPipeline pipe(dev, detail::engine_options(opts));
  Event prev{};

  for (index_t j0 = 0; j0 < n; j0 += b) {
    const index_t w = std::min(b, n - j0);
    const index_t below = m - j0;
    PanelResult panel = factor_lu_panel(pipe, a, j0, w, prev, opts);
    detail::sync_unless_overlap(dev, opts);
    prev = panel.on_host;

    const index_t rest = n - j0 - w;
    if (rest > 0) {
      // U12 = L11^{-1} A12, solved on the device with the panel's L11 and
      // kept resident as the trailing update's B factor.
      DeviceMatrix u12 = dev.allocate(w, rest, StoragePrecision::FP32,
                                      "lu.U12");
      ooc::TaskPlan solve;
      solve.move_in_waits = {prev};
      solve.move_in = [&](ooc::MoveInCtx& ctx) {
        ctx.h2d(u12, ooc::host_block(sim::as_const(a), j0, j0 + w, w, rest),
                "h2d A12");
      };
      solve.compute_waits = {panel.factored};
      solve.compute = [&](ooc::ComputeCtx& ctx) {
        ctx.trsm(Device::TrsmKind::LeftLowerUnit,
                 DeviceMatrixRef(panel.panel, 0, 0, w, w), u12, "trsm U12");
      };
      solve.move_out = [&](ooc::MoveOutCtx& ctx) {
        ctx.d2h(ooc::host_block(a, j0, j0 + w, w, rest), u12, "d2h U12");
      };
      const ooc::TaskResult solved = pipe.run_task(solve);
      detail::sync_unless_overlap(dev, opts);

      // A22 -= L21 · U12 with both factors resident, C tiled.
      ooc::OocGemmOptions g = detail::engine_options(opts);
      const bytes_t residents = panel.panel.bytes() + u12.bytes();
      qr::QrOptions plan_opts;
      plan_opts.memory_budget_fraction = opts.memory_budget_fraction;
      const index_t tile = qr::detail::plan_tile_edge(dev, residents, plan_opts);
      g.blocksize = std::min<index_t>(tile, below - w);
      g.tile_cols = std::min<index_t>(tile, rest);
      g.host_input_ready = {prev};
      const auto update = ooc::outer_product_blocking(
          dev,
          Operand::on_device(DeviceMatrixRef(panel.panel, w, 0, below - w, w),
                             panel.factored),
          Operand::on_device(u12, solved.computed),
          ooc::host_block(sim::as_const(a), j0 + w, j0 + w, below - w, rest),
          ooc::host_block(a, j0 + w, j0 + w, below - w, rest), g);
      prev = update.done;
      detail::sync_unless_overlap(dev, opts);
      dev.free(u12);
    }
    dev.free(panel.panel);
  }

  dev.synchronize();
  return qr::stats_from_trace(dev.trace(), pipe.window_begin(),
                              dev.memory_peak());
}

namespace {

struct RecursiveLuState {
  Device& dev;
  HostMutRef a;
  const FactorOptions& opts;
  ooc::SlabPipeline& pipe;
};

Event lu_recurse(RecursiveLuState& st, index_t j0, index_t w, Event prev) {
  Device& dev = st.dev;
  const index_t b = st.opts.blocksize;
  const index_t panels = (w + b - 1) / b;
  if (panels <= 1) {
    PanelResult panel = factor_lu_panel(st.pipe, st.a, j0, w, prev, st.opts);
    detail::sync_unless_overlap(dev, st.opts);
    dev.free(panel.panel);
    return panel.on_host;
  }
  const index_t h = (panels / 2) * b;
  const index_t rest = w - h;
  const index_t m = st.a.rows;

  Event left = lu_recurse(st, j0, h, prev);

  // U12 = L11^{-1} A12, out of core (L11 may exceed device memory).
  ooc::OocGemmOptions gt = detail::engine_options(st.opts);
  gt.host_input_ready = {left};
  const auto tr = ooc::ooc_trsm(
      dev, ooc::TriSolveKind::LowerUnit,
      ooc::host_block(sim::as_const(st.a), j0, j0, h, h),
      ooc::host_block(sim::as_const(st.a), j0, j0 + h, h, rest),
      ooc::host_block(st.a, j0, j0 + h, h, rest), gt);
  detail::sync_unless_overlap(dev, st.opts);

  // A22 -= L21 · U12, streamed row slabs with U12 resident (column-split on
  // small-memory devices).
  const index_t below = m - j0 - h;
  const index_t n_split = detail::plan_update_split(dev, st.opts, m, h, rest);
  Event update_done{};
  for (const ooc::Slab panel :
       ooc::slab_partition(rest, n_split > 0 ? n_split : rest)) {
    ooc::OocGemmOptions g = detail::engine_options(st.opts);
    g.host_input_ready = {tr.done};
    const auto update = ooc::outer_product_recursive(
        dev,
        Operand::on_host(
            ooc::host_block(sim::as_const(st.a), j0 + h, j0, below, h)),
        Operand::on_host(ooc::host_block(sim::as_const(st.a), j0,
                                         j0 + h + panel.offset, h,
                                         panel.width)),
        ooc::host_block(sim::as_const(st.a), j0 + h, j0 + h + panel.offset,
                        below, panel.width),
        ooc::host_block(st.a, j0 + h, j0 + h + panel.offset, below,
                        panel.width),
        g);
    update_done = update.done;
  }
  detail::sync_unless_overlap(dev, st.opts);

  return lu_recurse(st, j0 + h, rest, update_done);
}

} // namespace

FactorStats recursive_ooc_lu(Device& dev, HostMutRef a,
                             const FactorOptions& opts) {
  const index_t m = a.rows;
  const index_t n = a.cols;
  ROCQR_CHECK(m >= n && n >= 1, "recursive_ooc_lu: need m >= n >= 1");
  ROCQR_CHECK(opts.blocksize >= 1, "recursive_ooc_lu: blocksize must be positive");

  ooc::SlabPipeline pipe(dev, detail::engine_options(opts));
  RecursiveLuState st{dev, a, opts, pipe};
  lu_recurse(st, 0, n, Event{});
  dev.synchronize();
  return qr::stats_from_trace(dev.trace(), pipe.window_begin(),
                              dev.memory_peak());
}

} // namespace rocqr::lu
