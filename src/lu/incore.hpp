// In-core LU factorization (no pivoting, blocked, recursive) and in-core
// recursive Cholesky — the panel solvers and oracles for the out-of-core
// LU/Cholesky drivers that realize the paper's §6 future work.
//
// Pivoting: the paper notes there is no in-core TensorCore partial-pivoted
// LU to build on and analyses the OOC pattern theoretically; we follow suit
// and factor without pivoting, which is exact for the diagonally dominant
// and SPD matrices the tests generate. An unblocked partial-pivoting LU is
// included as a host-side oracle.
#pragma once

#include <vector>

#include "blas/gemm.hpp"
#include "la/matrix.hpp"

namespace rocqr::lu {

/// In-place LU without pivoting on an m x n (m >= n) matrix: on return the
/// strict lower triangle holds L (unit diagonal implied), the upper
/// triangle holds U. Unblocked right-looking algorithm.
/// Throws InvalidArgument on a (numerically) zero pivot.
void lu_nopiv_unblocked(la::MatrixView a);

/// Blocked right-looking LU without pivoting, panel width `block`.
void lu_nopiv_blocked(la::MatrixView a, index_t block,
                      blas::GemmPrecision precision = blas::GemmPrecision::FP32);

/// Recursive LU without pivoting (column split in half, the Toledo'97
/// scheme): panels only at the recursion leaves, GEMM-rich updates —
/// exactly the structure the OOC recursive driver streams.
void lu_nopiv_recursive(la::MatrixView a, index_t base = 32,
                        blas::GemmPrecision precision = blas::GemmPrecision::FP32);

/// Unblocked LU with partial (row) pivoting: perm[i] is the original row
/// index that ended up at row i. Oracle for accuracy comparisons.
void lu_partial_unblocked(la::MatrixView a, std::vector<index_t>& perm);

/// Relative residual ‖A − L·U‖_F / ‖A‖_F for a combined in-place factor
/// (m x n, m >= n) against the original matrix.
double lu_residual(la::ConstMatrixView original, la::ConstMatrixView lu);

/// Solves A x = b given the in-place no-pivot factor (square): forward then
/// back substitution, in place in `b` (n x nrhs).
void lu_solve_inplace(la::ConstMatrixView lu, la::MatrixView b);

/// Recursive upper Cholesky A = RᵀR (in place, upper triangle; strict lower
/// zeroed): recursion splits in half, trailing update is the TN GEMM the
/// OOC driver streams. Base case is la::cholesky_upper.
void cholesky_recursive(la::MatrixView a, index_t base = 32,
                        blas::GemmPrecision precision = blas::GemmPrecision::FP32);

/// Relative residual ‖A − RᵀR‖_F / ‖A‖_F.
double cholesky_residual(la::ConstMatrixView original, la::ConstMatrixView r);

} // namespace rocqr::lu
