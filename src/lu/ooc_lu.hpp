// Out-of-core LU factorization (no pivoting) — the paper's §6 future work:
// "the trailing matrix update in LU factorization is also of outer product
// form, and the recursive algorithm can definitely help this kind of
// GEMMs". Both the conventional blocking driver and the recursive driver
// are built from the same OOC engines as the QR drivers.
#pragma once

#include "blas/gemm.hpp"
#include "qr/options.hpp"
#include "sim/device.hpp"

namespace rocqr::lu {

/// Options for the OOC LU/Cholesky drivers (a subset of the QR knobs).
struct FactorOptions {
  index_t blocksize = 16384;
  blas::GemmPrecision precision = blas::GemmPrecision::FP16_FP32;
  /// §4.1.2 extra C working space in the trailing updates.
  bool staging_buffer = true;
  bool ramp_up = false;
  index_t ramp_start = 2048;
  int pipeline_depth = 2;
  /// In-core base width of the panel solver (Real-mode numerics).
  index_t panel_base = 32;
  /// Cross-phase overlap (off = synchronize between phases).
  bool overlap = true;
  double memory_budget_fraction = 0.92;
};

/// Statistics reuse the QR aggregate (same trace-derived quantities).
using FactorStats = qr::QrStats;

/// Blocking (right-looking) OOC LU of the host matrix `a` (m x n, m >= n),
/// in place: strict lower triangle becomes L (unit diagonal), upper becomes
/// U. No pivoting — intended for diagonally dominant / SPD-like inputs, as
/// discussed in src/lu/incore.hpp.
FactorStats blocking_ooc_lu(sim::Device& dev, sim::HostMutRef a,
                            const FactorOptions& opts);

/// Recursive OOC LU (column split in half; panels only at the leaves; the
/// U12 solves run through the out-of-core triangular solver and the
/// trailing updates through the recursive outer-product engine).
FactorStats recursive_ooc_lu(sim::Device& dev, sim::HostMutRef a,
                             const FactorOptions& opts);

} // namespace rocqr::lu
