#include "lu/ooc_cholesky.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "la/cholesky.hpp"
#include "lu/driver_common.hpp"
#include "ooc/operand.hpp"
#include "ooc/pipeline.hpp"
#include "ooc/slab_schedule.hpp"
#include "ooc/trsm_engine.hpp"
#include "qr/driver_util.hpp"

namespace rocqr::lu {

using ooc::Operand;
using sim::Device;
using sim::DeviceMatrix;
using sim::DeviceMatrixRef;
using sim::Event;
using sim::HostMutRef;
using sim::StoragePrecision;
using sim::Stream;

namespace {

/// Enqueues the in-core potrf of the resident w x w diagonal block.
void panel_potrf_device(Device& dev, const DeviceMatrix& block, Stream stream,
                        const FactorOptions& opts) {
  (void)opts;
  const index_t w = block.rows();
  // potrf performs w³/3 flops; its GEMM-rich right-looking form sustains
  // roughly the panel rate.
  const double flops = static_cast<double>(w) * w * w / 3.0;
  const sim_time_t seconds =
      dev.model().spec().kernel_latency_s + flops / dev.model().panel_rate(w, w);
  dev.custom_compute(stream, seconds, static_cast<flops_t>(flops),
                     sim::OpKind::Panel,
                     "potrf " + std::to_string(w) + "x" + std::to_string(w),
                     [&]() {
                       la::Matrix host_block = dev.download(block);
                       la::cholesky_upper(host_block.view());
                       dev.upload(block, host_block.view());
                     });
}

struct DiagResult {
  DeviceMatrix block; // resident R11 (caller frees)
  Event factored;
  Event on_host;
};

DiagResult factor_diag_block(ooc::SlabPipeline& pipe, HostMutRef a, index_t j0,
                             index_t w, Event prev, const FactorOptions& opts) {
  Device& dev = pipe.device();
  DiagResult r;
  r.block = dev.allocate(w, w, StoragePrecision::FP32, "chol.R11");

  ooc::TaskPlan task;
  task.move_in_waits = {prev};
  task.move_in = [&](ooc::MoveInCtx& ctx) {
    ctx.h2d(r.block, ooc::host_block(sim::as_const(a), j0, j0, w, w),
            "h2d A11");
  };
  task.compute = [&](ooc::ComputeCtx& ctx) {
    panel_potrf_device(dev, r.block, ctx.stream(), opts);
  };
  task.move_out = [&](ooc::MoveOutCtx& ctx) {
    ctx.d2h(ooc::host_block(a, j0, j0, w, w), r.block, "d2h R11");
  };
  const ooc::TaskResult done = pipe.run_task(task);
  r.factored = done.computed;
  r.on_host = done.moved_out;
  return r;
}

} // namespace

FactorStats blocking_ooc_cholesky(Device& dev, HostMutRef a,
                                  const FactorOptions& opts) {
  const index_t n = a.rows;
  ROCQR_CHECK(a.cols == n && n >= 1, "blocking_ooc_cholesky: matrix must be square");
  const index_t b = std::min(opts.blocksize, n);

  ooc::SlabPipeline pipe(dev, detail::engine_options(opts));
  Event prev{};

  for (index_t j0 = 0; j0 < n; j0 += b) {
    const index_t w = std::min(b, n - j0);
    DiagResult diag = factor_diag_block(pipe, a, j0, w, prev, opts);
    detail::sync_unless_overlap(dev, opts);
    prev = diag.on_host;

    const index_t rest = n - j0 - w;
    if (rest > 0) {
      // R12 = R11⁻ᵀ A12, solved on the device and kept resident.
      DeviceMatrix r12 =
          dev.allocate(w, rest, StoragePrecision::FP32, "chol.R12");
      ooc::TaskPlan solve;
      solve.move_in_waits = {prev};
      solve.move_in = [&](ooc::MoveInCtx& ctx) {
        ctx.h2d(r12, ooc::host_block(sim::as_const(a), j0, j0 + w, w, rest),
                "h2d A12");
      };
      solve.compute_waits = {diag.factored};
      solve.compute = [&](ooc::ComputeCtx& ctx) {
        ctx.trsm(Device::TrsmKind::LeftUpperTrans, diag.block, r12,
                 "trsm R12");
      };
      solve.move_out = [&](ooc::MoveOutCtx& ctx) {
        ctx.d2h(ooc::host_block(a, j0, j0 + w, w, rest), r12, "d2h R12");
      };
      const ooc::TaskResult solved = pipe.run_task(solve);
      detail::sync_unless_overlap(dev, opts);

      // A22 -= R12ᵀ · R12: the transposed outer product, C tiled. Only the
      // upper triangle is ever read again, so sub-diagonal tiles are
      // skipped (roughly halves this update's movement and flops).
      ooc::OocGemmOptions g = detail::engine_options(opts);
      g.outer_opa = blas::Op::Trans;
      g.upper_triangle_tiles_only = true;
      qr::QrOptions plan_opts;
      plan_opts.memory_budget_fraction = opts.memory_budget_fraction;
      const index_t tile =
          qr::detail::plan_tile_edge(dev, 2 * r12.bytes(), plan_opts);
      g.blocksize = std::min<index_t>(tile, rest);
      g.tile_cols = std::min<index_t>(tile, rest);
      g.host_input_ready = {prev};
      const auto update = ooc::outer_product_blocking(
          dev, Operand::on_device(r12, solved.computed),
          Operand::on_device(r12, solved.computed),
          ooc::host_block(sim::as_const(a), j0 + w, j0 + w, rest, rest),
          ooc::host_block(a, j0 + w, j0 + w, rest, rest), g);
      prev = update.done;
      detail::sync_unless_overlap(dev, opts);
      dev.free(r12);
    }
    dev.free(diag.block);
  }

  dev.synchronize();
  return qr::stats_from_trace(dev.trace(), pipe.window_begin(),
                              dev.memory_peak());
}

namespace {

struct RecursiveCholState {
  Device& dev;
  HostMutRef a;
  const FactorOptions& opts;
  ooc::SlabPipeline& pipe;
};

Event chol_recurse(RecursiveCholState& st, index_t j0, index_t w, Event prev) {
  Device& dev = st.dev;
  const index_t b = st.opts.blocksize;
  const index_t panels = (w + b - 1) / b;
  if (panels <= 1) {
    DiagResult diag = factor_diag_block(st.pipe, st.a, j0, w, prev, st.opts);
    detail::sync_unless_overlap(dev, st.opts);
    dev.free(diag.block);
    return diag.on_host;
  }
  const index_t h = (panels / 2) * b;
  const index_t rest = w - h;

  Event left = chol_recurse(st, j0, h, prev);

  // R12 = R11⁻ᵀ A12, out of core.
  ooc::OocGemmOptions gt = detail::engine_options(st.opts);
  gt.host_input_ready = {left};
  const auto tr = ooc::ooc_trsm(
      dev, ooc::TriSolveKind::UpperTrans,
      ooc::host_block(sim::as_const(st.a), j0, j0, h, h),
      ooc::host_block(sim::as_const(st.a), j0, j0 + h, h, rest),
      ooc::host_block(st.a, j0, j0 + h, h, rest), gt);
  detail::sync_unless_overlap(dev, st.opts);

  // A22 -= R12ᵀ · R12, streamed row slabs (== R12 column slabs) with R12
  // resident, column-split when memory-bound.
  const index_t n_split =
      detail::plan_update_split(dev, st.opts, st.a.rows, h, rest);
  Event update_done{};
  for (const ooc::Slab panel :
       ooc::slab_partition(rest, n_split > 0 ? n_split : rest)) {
    ooc::OocGemmOptions g = detail::engine_options(st.opts);
    g.outer_opa = blas::Op::Trans;
    // Unsplit square update: stream only the trapezoid from the diagonal
    // (the strict lower triangle is never read again).
    g.upper_trapezoid_slabs = n_split == 0;
    g.host_input_ready = {tr.done};
    const auto update = ooc::outer_product_recursive(
        dev,
        Operand::on_host(
            ooc::host_block(sim::as_const(st.a), j0, j0 + h, h, rest)),
        Operand::on_host(ooc::host_block(sim::as_const(st.a), j0,
                                         j0 + h + panel.offset, h,
                                         panel.width)),
        ooc::host_block(sim::as_const(st.a), j0 + h, j0 + h + panel.offset,
                        rest, panel.width),
        ooc::host_block(st.a, j0 + h, j0 + h + panel.offset, rest,
                        panel.width),
        g);
    update_done = update.done;
  }
  detail::sync_unless_overlap(dev, st.opts);

  return chol_recurse(st, j0 + h, rest, update_done);
}

} // namespace

FactorStats recursive_ooc_cholesky(Device& dev, HostMutRef a,
                                   const FactorOptions& opts) {
  const index_t n = a.rows;
  ROCQR_CHECK(a.cols == n && n >= 1,
              "recursive_ooc_cholesky: matrix must be square");
  ROCQR_CHECK(opts.blocksize >= 1,
              "recursive_ooc_cholesky: blocksize must be positive");

  ooc::SlabPipeline pipe(dev, detail::engine_options(opts));
  RecursiveCholState st{dev, a, opts, pipe};
  chol_recurse(st, 0, n, Event{});
  dev.synchronize();
  return qr::stats_from_trace(dev.trace(), pipe.window_begin(),
                              dev.memory_peak());
}

} // namespace rocqr::lu
