// Out-of-core Cholesky factorization (A = RᵀR, upper) — the second half of
// the paper's §6 future work. The trailing update A22 -= R12ᵀ·R12 is the
// transposed outer-product form, streamed through the same engines with
// opts.outer_opa = Trans.
//
// Only the upper triangle of the host matrix is meaningful on return (like
// LAPACK potrf, the strict lower triangle is left unspecified — it carries
// the symmetric images of the trailing updates).
#pragma once

#include "lu/ooc_lu.hpp"

namespace rocqr::lu {

/// Blocking right-looking OOC Cholesky of the SPD host matrix `a` (n x n),
/// in place (upper triangle becomes R).
FactorStats blocking_ooc_cholesky(sim::Device& dev, sim::HostMutRef a,
                                  const FactorOptions& opts);

/// Recursive OOC Cholesky: diagonal-block split in half, R12 panels through
/// the out-of-core Rᵀ-solve, trailing updates through the recursive
/// transposed outer product.
FactorStats recursive_ooc_cholesky(sim::Device& dev, sim::HostMutRef a,
                                   const FactorOptions& opts);

} // namespace rocqr::lu
