#include "lu/incore.hpp"

#include <algorithm>
#include <cmath>

#include "blas/trsm.hpp"
#include "common/error.hpp"
#include "la/cholesky.hpp"

namespace rocqr::lu {

namespace {

void check_tall(la::MatrixView a, const char* what) {
  ROCQR_CHECK(a.rows() >= a.cols() && a.cols() >= 1,
              std::string(what) + ": need m >= n >= 1");
}

} // namespace

void lu_nopiv_unblocked(la::MatrixView a) {
  check_tall(a, "lu_nopiv_unblocked");
  const index_t m = a.rows();
  const index_t n = a.cols();
  for (index_t j = 0; j < n; ++j) {
    const float pivot = a(j, j);
    ROCQR_CHECK(pivot != 0.0f, "lu_nopiv_unblocked: zero pivot");
    const float inv = 1.0f / pivot;
    for (index_t i = j + 1; i < m; ++i) a(i, j) *= inv;
    // Rank-1 trailing update.
    for (index_t c = j + 1; c < n; ++c) {
      const float ujc = a(j, c);
      if (ujc == 0.0f) continue;
      for (index_t i = j + 1; i < m; ++i) a(i, c) -= a(i, j) * ujc;
    }
  }
}

void lu_nopiv_blocked(la::MatrixView a, index_t block,
                      blas::GemmPrecision precision) {
  check_tall(a, "lu_nopiv_blocked");
  ROCQR_CHECK(block >= 1, "lu_nopiv_blocked: block must be >= 1");
  const index_t m = a.rows();
  const index_t n = a.cols();
  for (index_t j0 = 0; j0 < n; j0 += block) {
    const index_t w = std::min(block, n - j0);
    // Panel factorization on the trailing rows.
    lu_nopiv_unblocked(a.block(j0, j0, m - j0, w));
    const index_t rest = n - j0 - w;
    if (rest == 0) continue;
    // U12 = L11^{-1} A12.
    la::MatrixView a12 = a.block(j0, j0 + w, w, rest);
    blas::trsm_left_lower(w, rest, /*unit_diagonal=*/true, &a(j0, j0), a.ld(),
                          a12.data(), a12.ld());
    // A22 -= L21 U12.
    const index_t below = m - j0 - w;
    if (below > 0) {
      blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, below, rest, w, -1.0f,
                 &a(j0 + w, j0), a.ld(), a12.data(), a12.ld(), 1.0f,
                 &a(j0 + w, j0 + w), a.ld(), precision);
    }
  }
}

void lu_nopiv_recursive(la::MatrixView a, index_t base,
                        blas::GemmPrecision precision) {
  check_tall(a, "lu_nopiv_recursive");
  ROCQR_CHECK(base >= 1, "lu_nopiv_recursive: base must be >= 1");
  const index_t m = a.rows();
  const index_t n = a.cols();
  if (n <= base) {
    lu_nopiv_unblocked(a);
    return;
  }
  const index_t h = n / 2;
  // Factor the left half over all rows.
  lu_nopiv_recursive(a.block(0, 0, m, h), base, precision);
  // U12 = L11^{-1} A12.
  la::MatrixView a12 = a.block(0, h, h, n - h);
  blas::trsm_left_lower(h, n - h, /*unit_diagonal=*/true, a.data(), a.ld(),
                        a12.data(), a12.ld());
  // A22 -= L21 U12, then recurse on the trailing block.
  blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, m - h, n - h, h, -1.0f,
             &a(h, 0), a.ld(), a12.data(), a12.ld(), 1.0f, &a(h, h), a.ld(),
             precision);
  lu_nopiv_recursive(a.block(h, h, m - h, n - h), base, precision);
}

void lu_partial_unblocked(la::MatrixView a, std::vector<index_t>& perm) {
  check_tall(a, "lu_partial_unblocked");
  const index_t m = a.rows();
  const index_t n = a.cols();
  perm.resize(static_cast<size_t>(m));
  for (index_t i = 0; i < m; ++i) perm[static_cast<size_t>(i)] = i;
  for (index_t j = 0; j < n; ++j) {
    // Pick the largest-magnitude pivot in column j.
    index_t best = j;
    float best_abs = std::fabs(a(j, j));
    for (index_t i = j + 1; i < m; ++i) {
      if (std::fabs(a(i, j)) > best_abs) {
        best = i;
        best_abs = std::fabs(a(i, j));
      }
    }
    ROCQR_CHECK(best_abs > 0.0f, "lu_partial_unblocked: singular matrix");
    if (best != j) {
      for (index_t c = 0; c < n; ++c) std::swap(a(j, c), a(best, c));
      std::swap(perm[static_cast<size_t>(j)], perm[static_cast<size_t>(best)]);
    }
    const float inv = 1.0f / a(j, j);
    for (index_t i = j + 1; i < m; ++i) a(i, j) *= inv;
    for (index_t c = j + 1; c < n; ++c) {
      const float ujc = a(j, c);
      if (ujc == 0.0f) continue;
      for (index_t i = j + 1; i < m; ++i) a(i, c) -= a(i, j) * ujc;
    }
  }
}

double lu_residual(la::ConstMatrixView original, la::ConstMatrixView lu) {
  ROCQR_CHECK(original.rows() == lu.rows() && original.cols() == lu.cols(),
              "lu_residual: shape mismatch");
  const index_t m = lu.rows();
  const index_t n = lu.cols();
  double num = 0.0;
  double den = 0.0;
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      // (L U)(i, j) = sum_p L(i, p) U(p, j), p <= min(i, j); L(i, i) = 1.
      const index_t pmax = std::min(i, j);
      double acc = 0.0;
      for (index_t p = 0; p <= pmax; ++p) {
        const double lip = p == i ? 1.0 : static_cast<double>(lu(i, p));
        acc += lip * static_cast<double>(lu(p, j));
      }
      const double d = static_cast<double>(original(i, j)) - acc;
      num += d * d;
      const double o = static_cast<double>(original(i, j));
      den += o * o;
    }
  }
  return den > 0.0 ? std::sqrt(num / den) : std::sqrt(num);
}

void lu_solve_inplace(la::ConstMatrixView lu, la::MatrixView b) {
  ROCQR_CHECK(lu.rows() == lu.cols(), "lu_solve_inplace: factor must be square");
  ROCQR_CHECK(b.rows() == lu.rows(), "lu_solve_inplace: rhs shape mismatch");
  blas::trsm_left_lower(b.rows(), b.cols(), /*unit_diagonal=*/true, lu.data(),
                        lu.ld(), b.data(), b.ld());
  blas::trsm_left_upper(b.rows(), b.cols(), lu.data(), lu.ld(), b.data(),
                        b.ld());
}

void cholesky_recursive(la::MatrixView a, index_t base,
                        blas::GemmPrecision precision) {
  ROCQR_CHECK(a.rows() == a.cols(), "cholesky_recursive: matrix must be square");
  ROCQR_CHECK(base >= 1, "cholesky_recursive: base must be >= 1");
  const index_t n = a.rows();
  if (n <= base) {
    la::cholesky_upper(a);
    return;
  }
  const index_t h = n / 2;
  la::MatrixView a11 = a.block(0, 0, h, h);
  la::MatrixView a12 = a.block(0, h, h, n - h);
  la::MatrixView a22 = a.block(h, h, n - h, n - h);
  cholesky_recursive(a11, base, precision);
  // R12 = R11^{-T} A12.
  blas::trsm_left_upper_trans(h, n - h, a11.data(), a11.ld(), a12.data(),
                              a12.ld());
  // A22 -= R12ᵀ R12 — the TN trailing update the OOC driver streams.
  blas::gemm(blas::Op::Trans, blas::Op::NoTrans, n - h, n - h, h, -1.0f,
             a12.data(), a12.ld(), a12.data(), a12.ld(), 1.0f, a22.data(),
             a22.ld(), precision);
  cholesky_recursive(a22, base, precision);
  // Zero the strict lower triangle below the diagonal blocks.
  for (index_t j = 0; j < h; ++j) {
    for (index_t i = h; i < n; ++i) a(i, j) = 0.0f;
  }
}

double cholesky_residual(la::ConstMatrixView original, la::ConstMatrixView r) {
  ROCQR_CHECK(original.rows() == original.cols() && r.rows() == r.cols() &&
                  original.rows() == r.rows(),
              "cholesky_residual: shape mismatch");
  const index_t n = r.rows();
  double num = 0.0;
  double den = 0.0;
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      // (RᵀR)(i, j) = sum_p R(p, i) R(p, j), p <= min(i, j).
      const index_t pmax = std::min(i, j);
      double acc = 0.0;
      for (index_t p = 0; p <= pmax; ++p) {
        acc += static_cast<double>(r(p, i)) * static_cast<double>(r(p, j));
      }
      const double d = static_cast<double>(original(i, j)) - acc;
      num += d * d;
      const double o = static_cast<double>(original(i, j));
      den += o * o;
    }
  }
  return den > 0.0 ? std::sqrt(num / den) : std::sqrt(num);
}

} // namespace rocqr::lu
