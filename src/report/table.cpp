#include "report/table.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace rocqr::report {

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {
  ROCQR_CHECK(!headers_.empty(), "Table: need at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  ROCQR_CHECK(cells.size() == headers_.size(),
              "Table::add_row: cell count does not match header count");
  rows_.push_back(Row{false, std::move(cells)});
}

void Table::add_rule() { rows_.push_back(Row{true, {}}); }

std::string Table::render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const Row& row : rows_) {
    if (row.rule) continue;
    for (size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  const auto rule_line = [&]() {
    std::string s = "+";
    for (const size_t w : widths) {
      s.append(w + 2, '-');
      s.push_back('+');
    }
    s.push_back('\n');
    return s;
  };
  const auto format_row = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (size_t c = 0; c < cells.size(); ++c) {
      s.push_back(' ');
      s.append(pad_right(cells[c], static_cast<int>(widths[c])));
      s.append(" |");
    }
    s.push_back('\n');
    return s;
  };

  std::ostringstream os;
  if (!title_.empty()) os << title_ << "\n";
  os << rule_line() << format_row(headers_) << rule_line();
  for (const Row& row : rows_) {
    if (row.rule) {
      os << rule_line();
    } else {
      os << format_row(row.cells);
    }
  }
  os << rule_line();
  return os.str();
}

std::string compare_cell(double measured, double paper, const char* unit) {
  std::ostringstream os;
  os << format_fixed(measured, 1) << unit << " (paper " << format_fixed(paper, 1)
     << unit << ")";
  return os.str();
}

} // namespace rocqr::report
