// The paper's published measurements (Tables 1-4 and quoted text numbers),
// used by the benchmark harness to print measured-vs-paper comparisons.
// All times in seconds, rates in flop/s.
#pragma once

namespace rocqr::report::paper {

// Table 1 — inner product, recursive 65536x131072x65536 (slab 16384),
// blocking 16384x131072x114688 (slab 16384).
struct InnerProduct {
  static constexpr double recursive_h2d_s = 0.693;
  static constexpr double recursive_gemm_s = 1.408;
  static constexpr double recursive_d2h_s = 1.306;
  static constexpr double recursive_incore_flops = 99.9e12;
  static constexpr double recursive_sync_s = 18.183;
  static constexpr double recursive_sync_flops = 62.0e12;
  static constexpr double recursive_async_s = 12.932;
  static constexpr double recursive_async_flops = 87.1e12;

  static constexpr double blocking_h2d_s = 0.728;
  static constexpr double blocking_gemm_s = 1.337;
  static constexpr double blocking_d2h_s = 0.081;
  static constexpr double blocking_incore_flops = 52.6e12;
  static constexpr double blocking_sync_s = 14.920;
  static constexpr double blocking_sync_flops = 33.0e12;
  static constexpr double blocking_async_s = 11.286;
  static constexpr double blocking_async_flops = 43.6e12;
};

// Table 2 — outer product, recursive 131072x65536x65536 (row slab 8192),
// blocking 131072x16384x114688 (tiles 16384x16384).
// NOTE: the paper prints blocking async 11.286 s > its own sync 5.119 s and
// identical to Table 1's blocking async — almost certainly a copy-paste
// error; we report our self-consistent value next to it.
struct OuterProduct {
  static constexpr double recursive_h2d_s = 0.347;
  static constexpr double recursive_gemm_s = 0.654;
  static constexpr double recursive_d2h_s = 0.163;
  static constexpr double recursive_incore_flops = 107.6e12;
  static constexpr double recursive_sync_s = 14.129;
  static constexpr double recursive_sync_flops = 60.3e12;
  static constexpr double recursive_async_s = 11.517;
  static constexpr double recursive_async_flops = 97.7e12;
  static constexpr double recursive_ideal_s = 10.974; // §5.1.2 bound

  static constexpr double blocking_h2d_s = 0.086;
  static constexpr double blocking_gemm_s = 0.089;
  static constexpr double blocking_d2h_s = 0.081;
  static constexpr double blocking_incore_flops = 98.8e12;
  static constexpr double blocking_sync_s = 5.119;
  static constexpr double blocking_async_s = 11.286; // suspect, see note
};

// Table 3 — full 131072^2 QR data movement at blocksize 16384.
struct QrMovement {
  static constexpr double recursive_h2d_s = 37.9;
  static constexpr double recursive_d2h_s = 19.3;
  static constexpr double blocking_h2d_s = 47.2;
  static constexpr double blocking_d2h_s = 22.3;
};

// Table 4 — GEMMs/panel split at blocksize 8192 (and quoted speedups).
struct QrSizes {
  static constexpr double s65536_recursive_gemms_s = 10.5;
  static constexpr double s65536_blocking_gemms_s = 18.9;
  static constexpr double s65536_panel_s = 2.7;
  static constexpr double s65536_speedup = 1.5; // overall, quoted in text

  static constexpr double s262144_recursive_gemms_s = 38.5;
  static constexpr double s262144_blocking_gemms_s = 77.0;
  static constexpr double s262144_panel_s = 9.0;
  static constexpr double s262144_speedup = 1.7;
};

// Fig 11 — blocking outer product at QR blocksize 8192, 32768^2 C tiles.
struct Fig11 {
  static constexpr double h2d_s = 0.347;
  static constexpr double gemm_s = 0.170;
  static constexpr double d2h_s = 0.326;
};

// Headline text claims (§5.2/§5.3).
struct Headline {
  static constexpr double speedup_large_memory = 1.25; // 32 GB, b=16384
  static constexpr double speedup_small_memory = 2.0;  // 16 GB, b=8192
  static constexpr double qr_level_opt_gain = 0.15;    // ~15%
  static constexpr double tc_peak_fraction = 0.45;     // ~45% of TC peak
  static constexpr double ramp_before_flops = 85e12;   // §4.1.3
  static constexpr double ramp_after_flops = 87e12;
};

} // namespace rocqr::report::paper
