// Plain-text table rendering for the benchmark harness output.
#pragma once

#include <string>
#include <vector>

namespace rocqr::report {

class Table {
 public:
  explicit Table(std::string title, std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Separator line between row groups.
  void add_rule();

  std::string render() const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  struct Row {
    bool rule = false;
    std::vector<std::string> cells;
  };
  std::vector<Row> rows_;
};

/// "measured (paper X, ratio Y)" comparison cell.
std::string compare_cell(double measured, double paper, const char* unit);

} // namespace rocqr::report
